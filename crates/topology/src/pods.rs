//! Pod partitioning: group a topology's nodes and links into subtrees
//! ("pods") joined by a shared spine.
//!
//! Multi-rooted datacenter trees (§3.3.1, Fig. 5) are pod-structured:
//! hosts hang off ToRs, ToRs off a pod's aggregation switches, and only
//! the aggregation↔core tier stitches pods together. Flows between hosts
//! of the same pod never leave it, so the links of distinct pods form
//! independent capacity subproblems between the rare cross-pod
//! interactions — the locality the sharded fair-share solver exploits.
//!
//! [`PodPartition::of`] derives the structure from an arbitrary
//! [`Topology`] without assuming a generator:
//!
//! * the **spine** is the highest switch tier present
//!   ([`crate::NodeKind::tier`]): cores in a multi-rooted tree, the aggregation
//!   switch in the two-rack cloud topology, the two ToRs of a dumbbell;
//! * **pods** are the connected components of the subgraph induced by the
//!   remaining (non-spine) nodes, numbered in node-id order
//!   (deterministic);
//! * a **link** belongs to a pod iff both endpoints do; links touching
//!   the spine (uplinks, core↔core) belong to no pod.
//!
//! Degenerate shapes stay well-defined rather than special-cased: a
//! dumbbell decomposes into single-host pods with every link on the
//! spine (the all-flows-cross-pod worst case), and a single-pod tree
//! yields one pod — callers that need real parallelism check
//! [`PodPartition::n_pods`] and fall back.

use crate::graph::{Link, NodeId, Topology};

/// Partition of a topology into pods plus a spine (see the module docs).
#[derive(Debug, Clone)]
pub struct PodPartition {
    /// Per node: its pod, or `None` for spine nodes.
    pod_of_node: Vec<Option<u32>>,
    n_pods: u32,
    /// The tier treated as spine (`u8::MAX` when the topology has no
    /// switches at all and everything is partitionable).
    spine_tier: u8,
}

impl PodPartition {
    /// Partition `topo` (deterministic: pods are numbered by the smallest
    /// node id they contain, in increasing order).
    pub fn of(topo: &Topology) -> PodPartition {
        let spine_tier = topo
            .nodes()
            .iter()
            .filter(|n| !n.kind.is_host())
            .map(|n| n.kind.tier())
            .max()
            .unwrap_or(u8::MAX);
        let is_spine = |n: NodeId| topo.node(n).kind.tier() >= spine_tier;
        let n = topo.node_count();
        let mut pod_of_node: Vec<Option<u32>> = vec![None; n];
        let mut n_pods = 0u32;
        let mut stack: Vec<NodeId> = Vec::new();
        for start in 0..n {
            let s = NodeId(start as u32);
            if pod_of_node[start].is_some() || is_spine(s) {
                continue;
            }
            let id = n_pods;
            n_pods += 1;
            pod_of_node[start] = Some(id);
            stack.push(s);
            while let Some(u) = stack.pop() {
                for &(v, _) in topo.neighbors(u) {
                    let vi = v.0 as usize;
                    if pod_of_node[vi].is_none() && !is_spine(v) {
                        pod_of_node[vi] = Some(id);
                        stack.push(v);
                    }
                }
            }
        }
        PodPartition { pod_of_node, n_pods, spine_tier }
    }

    /// Number of pods found.
    pub fn n_pods(&self) -> usize {
        self.n_pods as usize
    }

    /// The tier treated as spine (`u8::MAX` if no switch tier exists).
    pub fn spine_tier(&self) -> u8 {
        self.spine_tier
    }

    /// The pod containing node `n`, or `None` for spine nodes.
    pub fn pod_of_node(&self, n: NodeId) -> Option<u32> {
        self.pod_of_node[n.0 as usize]
    }

    /// Is `n` a spine node?
    pub fn is_spine(&self, n: NodeId) -> bool {
        self.pod_of_node[n.0 as usize].is_none()
    }

    /// The pod a link belongs to: the common pod of its endpoints, or
    /// `None` for links that touch the spine (uplinks, core links).
    pub fn pod_of_link(&self, link: &Link) -> Option<u32> {
        match (self.pod_of_node(link.a), self.pod_of_node(link.b)) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Number of pods that own at least one intra-pod link.
    ///
    /// The useful-parallelism measure for sharded solving: only such a
    /// pod can carry pod-local *network* flows (a singleton-host pod —
    /// the dumbbell degeneracy — has none, so every flow it sources is
    /// boundary work for the reconciler).
    pub fn pods_with_links(&self, topo: &Topology) -> usize {
        let mut has_link = vec![false; self.n_pods as usize];
        for l in topo.links() {
            if let Some(p) = self.pod_of_link(l) {
                has_link[p as usize] = true;
            }
        }
        has_link.iter().filter(|&&h| h).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{dumbbell, two_rack, MultiRootedTreeSpec};
    use crate::units::{GBIT, MICROS};
    use crate::LinkSpec;

    #[test]
    fn multi_rooted_tree_pods_are_the_subtrees() {
        let spec = MultiRootedTreeSpec { pods: 3, ..Default::default() };
        let topo = spec.build();
        let p = PodPartition::of(&topo);
        assert_eq!(p.n_pods(), 3, "one pod per aggregation subtree");
        // Cores are spine; everything below belongs to exactly one pod.
        for n in topo.nodes() {
            match n.kind {
                crate::NodeKind::Core => assert!(p.is_spine(n.id), "{}", n.name),
                _ => assert!(p.pod_of_node(n.id).is_some(), "{}", n.name),
            }
        }
        // Hosts of the same pod share a pod id; across pods they differ.
        let h = topo.hosts();
        let per_pod = spec.tors_per_pod * spec.hosts_per_tor;
        assert_eq!(p.pod_of_node(h[0]), p.pod_of_node(h[per_pod - 1]));
        assert_ne!(p.pod_of_node(h[0]), p.pod_of_node(h[per_pod]));
        // Host/ToR/ToR-agg links are pod-local; agg-core links are spine.
        for l in topo.links() {
            let touches_core =
                [l.a, l.b].iter().any(|&n| topo.node(n).kind == crate::NodeKind::Core);
            assert_eq!(p.pod_of_link(l).is_none(), touches_core);
        }
    }

    #[test]
    fn second_agg_tier_stays_inside_the_pod() {
        let spec = MultiRootedTreeSpec { second_agg_tier: true, ..Default::default() };
        let topo = spec.build();
        let p = PodPartition::of(&topo);
        assert_eq!(p.n_pods(), spec.pods);
        for n in topo.nodes() {
            if n.kind == crate::NodeKind::Agg2 {
                assert!(p.pod_of_node(n.id).is_some(), "agg2 belongs to its pod");
            }
        }
    }

    #[test]
    fn two_rack_pods_are_the_racks() {
        let t =
            two_rack(4, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(10.0 * GBIT, 5 * MICROS));
        let p = PodPartition::of(&t);
        assert_eq!(p.n_pods(), 2, "one pod per rack, agg switch on the spine");
        let h = t.hosts();
        assert_eq!(p.pod_of_node(h[0]), p.pod_of_node(h[3]));
        assert_ne!(p.pod_of_node(h[0]), p.pod_of_node(h[4]));
        // ToR↔agg uplinks are spine links; host↔ToR links are pod-local.
        let spine_links = t.links().iter().filter(|l| p.pod_of_link(l).is_none()).count();
        assert_eq!(spine_links, 2);
    }

    #[test]
    fn dumbbell_degenerates_to_singleton_pods() {
        // The highest switch tier is ToR, so both switches are spine and
        // every host is its own pod: the all-flows-cross-pod worst case.
        let t = dumbbell(3, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(GBIT, 20 * MICROS));
        let p = PodPartition::of(&t);
        assert_eq!(p.n_pods(), 6);
        for l in t.links() {
            assert_eq!(p.pod_of_link(l), None, "every link touches the spine");
        }
    }

    #[test]
    fn switchless_topology_partitions_all_nodes() {
        // No non-host nodes: nothing is spine, components are pods.
        let mut b = Topology::builder();
        let a = b.node(crate::NodeKind::Host, "a");
        let c = b.node(crate::NodeKind::Host, "c");
        b.link(a, c, LinkSpec::new(GBIT, 0));
        let d = b.node(crate::NodeKind::Host, "d");
        let e = b.node(crate::NodeKind::Host, "e");
        b.link(d, e, LinkSpec::new(GBIT, 0));
        let t = b.build();
        let p = PodPartition::of(&t);
        assert_eq!(p.n_pods(), 2);
        assert_eq!(p.spine_tier(), u8::MAX);
        assert_eq!(p.pod_of_node(a), p.pod_of_node(c));
        assert_ne!(p.pod_of_node(a), p.pod_of_node(d));
    }
}
