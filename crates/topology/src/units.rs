//! Units used across the Choreo workspace.
//!
//! Link rates are `f64` bits per second; simulated time is `u64` nanoseconds
//! ([`Nanos`]). Helper constants let call sites write `1.0 * GBIT` or
//! `10 * MILLIS` instead of raw exponents.

/// Simulated time in nanoseconds.
pub type Nanos = u64;

/// One kilobit per second, in bits/s.
pub const KBIT: f64 = 1e3;
/// One megabit per second, in bits/s.
pub const MBIT: f64 = 1e6;
/// One gigabit per second, in bits/s.
pub const GBIT: f64 = 1e9;

/// One microsecond, in nanoseconds.
pub const MICROS: Nanos = 1_000;
/// One millisecond, in nanoseconds.
pub const MILLIS: Nanos = 1_000_000;
/// One second, in nanoseconds.
pub const SECS: Nanos = 1_000_000_000;

/// Time (in nanoseconds, rounded up) to serialize `bytes` onto a link of
/// `rate_bps` bits per second.
///
/// Returns 0 for a zero-byte payload; panics if `rate_bps` is not positive,
/// because a link with no capacity cannot transmit.
pub fn tx_time(bytes: u64, rate_bps: f64) -> Nanos {
    assert!(rate_bps > 0.0, "tx_time: non-positive link rate {rate_bps}");
    if bytes == 0 {
        return 0;
    }
    let secs = (bytes as f64 * 8.0) / rate_bps;
    (secs * 1e9).ceil() as Nanos
}

/// Convert a byte count and a duration into a rate in bits/s.
///
/// Returns 0 when `dur` is zero (an instantaneous transfer has no meaningful
/// rate; callers treat 0 as "unknown").
pub fn rate_of(bytes: u64, dur: Nanos) -> f64 {
    if dur == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / (dur as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_one_packet_gigabit() {
        // 1500 bytes at 1 Gbit/s = 12 microseconds.
        assert_eq!(tx_time(1500, GBIT), 12 * MICROS);
    }

    #[test]
    fn tx_time_zero_bytes_is_zero() {
        assert_eq!(tx_time(0, GBIT), 0);
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bits/ns-scale rate: 8 bits / 1e9 bps = 8 ns exactly;
        // pick a rate that does not divide evenly.
        let t = tx_time(1, 3e8);
        assert_eq!(t, 27); // 8 bits / 0.3 bits-per-ns = 26.67 -> 27
    }

    #[test]
    #[should_panic(expected = "non-positive link rate")]
    fn tx_time_rejects_zero_rate() {
        tx_time(1, 0.0);
    }

    #[test]
    fn rate_round_trip() {
        let bytes = 125_000_000u64; // 1 Gbit
        let dur = SECS;
        let r = rate_of(bytes, dur);
        assert!((r - GBIT).abs() < 1.0);
    }

    #[test]
    fn rate_of_zero_duration() {
        assert_eq!(rate_of(100, 0), 0.0);
    }
}
