//! The VM layer: tenant-visible virtual machines mapped onto physical hosts,
//! VM-level hop counts, and traceroute emulation.
//!
//! Choreo is a *tenant-side* system: it sees VMs, not hosts. Two VMs may
//! share a physical machine — the paper observed 18 EC2 paths near 4 Gbit/s
//! and attributed them to co-located instances (§2.2, §4.2). At the VM level
//! the paper counts a same-host path as **one hop**, and inter-host paths as
//! the number of physical links traversed, which in a multi-rooted tree is
//! always even (§3.3.1, Fig. 8 shows the set {1, 2, 4, 6, 8}).

use crate::graph::{NodeId, Topology};
use crate::route::RouteTable;

/// Index of a tenant VM (dense, assigned at allocation time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

/// How a provider's traceroute reports hop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracerouteStyle {
    /// Report the true number of links traversed (EC2-like).
    Full,
    /// Hide the fabric: report 1 for co-located VMs and a fixed count for
    /// everything else (Rackspace-like; the paper saw only {1, 4} there
    /// and suspected "Rackspace's traceroute results may hide certain
    /// aspects of their topology").
    Opaque {
        /// Hop count reported for every inter-host path.
        inter_host_hops: usize,
    },
}

/// Mapping from tenant VMs to physical hosts.
#[derive(Debug, Clone)]
pub struct VmMap {
    vm_to_host: Vec<NodeId>,
}

impl VmMap {
    /// Create a mapping; `vm_to_host[i]` is the host of `VmId(i)`.
    ///
    /// Panics if any host id is not a host node of `topo`.
    pub fn new(topo: &Topology, vm_to_host: Vec<NodeId>) -> Self {
        for &h in &vm_to_host {
            assert!(
                topo.node(h).kind.is_host(),
                "VM mapped to non-host node {h:?} ({})",
                topo.node(h).name
            );
        }
        VmMap { vm_to_host }
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vm_to_host.len()
    }

    /// True iff no VMs are mapped.
    pub fn is_empty(&self) -> bool {
        self.vm_to_host.is_empty()
    }

    /// Physical host of a VM.
    pub fn host(&self, vm: VmId) -> NodeId {
        self.vm_to_host[vm.0 as usize]
    }

    /// All VM ids.
    pub fn vms(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.vm_to_host.len() as u32).map(VmId)
    }

    /// True iff the two VMs share a physical machine.
    pub fn colocated(&self, a: VmId, b: VmId) -> bool {
        self.host(a) == self.host(b)
    }

    /// VM-level hop count: 1 if co-located (traffic stays inside the
    /// hypervisor, "one hop" in the paper's counting), otherwise the number
    /// of physical links on the shortest path.
    pub fn hop_count(&self, routes: &RouteTable, a: VmId, b: VmId) -> usize {
        if a == b {
            return 0;
        }
        if self.colocated(a, b) {
            return 1;
        }
        routes.hop_count(self.host(a), self.host(b))
    }

    /// Emulated traceroute between two VMs under the provider's
    /// reporting style.
    pub fn traceroute(
        &self,
        routes: &RouteTable,
        style: TracerouteStyle,
        a: VmId,
        b: VmId,
    ) -> usize {
        let true_hops = self.hop_count(routes, a, b);
        match style {
            TracerouteStyle::Full => true_hops,
            TracerouteStyle::Opaque { inter_host_hops } => {
                if true_hops <= 1 {
                    true_hops
                } else {
                    inter_host_hops
                }
            }
        }
    }

    /// Group VMs by the rack (ToR) their host hangs off, using the first
    /// switch on the host's shortest path to any other host. VMs whose host
    /// has no ToR (degenerate topologies) each get their own group.
    ///
    /// Bottleneck generalization in §3.3.2 clusters VMs by rack so one
    /// measurement covers the whole rack.
    pub fn rack_groups(&self, topo: &Topology) -> Vec<Vec<VmId>> {
        use std::collections::HashMap;
        let mut by_tor: HashMap<NodeId, Vec<VmId>> = HashMap::new();
        let mut loners = Vec::new();
        for vm in self.vms() {
            let host = self.host(vm);
            // A host's ToR is its unique switch neighbor in tree topologies.
            match topo.neighbors(host).first() {
                Some(&(sw, _)) => by_tor.entry(sw).or_default().push(vm),
                None => loners.push(vec![vm]),
            }
        }
        let mut groups: Vec<(NodeId, Vec<VmId>)> = by_tor.into_iter().collect();
        groups.sort_by_key(|(tor, _)| *tor);
        groups.into_iter().map(|(_, g)| g).chain(loners).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkSpec;
    use crate::tree::MultiRootedTreeSpec;
    use crate::units::{GBIT, MICROS};

    fn tree_and_routes() -> (Topology, RouteTable) {
        let t = MultiRootedTreeSpec::default().build();
        let rt = RouteTable::new(&t);
        (t, rt)
    }

    #[test]
    fn colocated_vms_have_one_hop() {
        let (t, rt) = tree_and_routes();
        let h0 = t.hosts()[0];
        let map = VmMap::new(&t, vec![h0, h0]);
        assert!(map.colocated(VmId(0), VmId(1)));
        assert_eq!(map.hop_count(&rt, VmId(0), VmId(1)), 1);
        assert_eq!(map.hop_count(&rt, VmId(0), VmId(0)), 0);
    }

    #[test]
    fn inter_host_hops_match_topology() {
        let (t, rt) = tree_and_routes();
        let h = t.hosts();
        let map = VmMap::new(&t, vec![h[0], h[1], h[4], h[8]]);
        assert_eq!(map.hop_count(&rt, VmId(0), VmId(1)), 2);
        assert_eq!(map.hop_count(&rt, VmId(0), VmId(2)), 4);
        assert_eq!(map.hop_count(&rt, VmId(0), VmId(3)), 6);
    }

    #[test]
    fn opaque_traceroute_reports_fixed_hops() {
        let (t, rt) = tree_and_routes();
        let h = t.hosts();
        let map = VmMap::new(&t, vec![h[0], h[0], h[8]]);
        let style = TracerouteStyle::Opaque { inter_host_hops: 4 };
        assert_eq!(map.traceroute(&rt, style, VmId(0), VmId(1)), 1);
        assert_eq!(map.traceroute(&rt, style, VmId(0), VmId(2)), 4);
        assert_eq!(map.traceroute(&rt, TracerouteStyle::Full, VmId(0), VmId(2)), 6);
    }

    #[test]
    fn rack_groups_cluster_by_tor() {
        let (t, _) = tree_and_routes();
        let h = t.hosts();
        // Two VMs on ToR 0 (hosts 0,1), one on ToR 1 (host 4).
        let map = VmMap::new(&t, vec![h[0], h[1], h[4]]);
        let groups = map.rack_groups(&t);
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    #[should_panic(expected = "non-host")]
    fn mapping_to_switch_rejected() {
        let t = MultiRootedTreeSpec::default().build();
        // Node 0 is a core switch in the generator's creation order.
        let sw = t.nodes().iter().find(|n| !n.kind.is_host()).unwrap().id;
        VmMap::new(&t, vec![sw]);
    }

    #[test]
    fn dumbbell_vm_hops() {
        let t = crate::tree::dumbbell(2, LinkSpec::new(GBIT, MICROS), LinkSpec::new(GBIT, MICROS));
        let rt = RouteTable::new(&t);
        let h = t.hosts();
        let map = VmMap::new(&t, vec![h[0], h[2]]);
        assert_eq!(map.hop_count(&rt, VmId(0), VmId(1)), 3);
    }
}
