//! Equal-cost shortest paths and deterministic per-flow path selection.
//!
//! Datacenter multi-rooted trees have many equal-cost paths between hosts;
//! real fabrics spread flows over them with ECMP (hash of the flow 5-tuple).
//! [`RouteTable`] precomputes, for every host pair, the full set of equal-cost
//! shortest paths and picks one per flow with a deterministic hash, so both
//! simulators agree on routing and experiments are reproducible.

use std::collections::VecDeque;

use crate::graph::{LinkDir, LinkId, NodeId, Topology};

/// One directed hop of a path: traverse `link` in direction `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectedHop {
    /// The link traversed.
    pub link: LinkId,
    /// Direction of traversal.
    pub dir: LinkDir,
}

/// A loop-free path between two hosts, as a sequence of directed hops.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Hops, in travel order. Empty iff `src == dst`.
    pub hops: Vec<DirectedHop>,
}

impl Path {
    /// Number of links traversed.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True iff the path has no hops (src == dst).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Sequence of nodes visited, starting at `src` and ending at `dst`.
    pub fn nodes(&self, topo: &Topology) -> Vec<NodeId> {
        let mut out = vec![self.src];
        let mut cur = self.src;
        for h in &self.hops {
            let link = topo.link(h.link);
            debug_assert_eq!(link.tail(h.dir), cur, "discontinuous path");
            cur = link.head(h.dir);
            out.push(cur);
        }
        out
    }
}

/// Precomputed equal-cost shortest paths between every pair of hosts.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// `paths[src_host_index][dst_host_index]` = all equal-cost shortest
    /// paths, deterministic order. Indexed by position in `topo.hosts()`.
    paths: Vec<Vec<Vec<Path>>>,
    host_index: Vec<Option<u32>>, // NodeId -> host index
    /// Cap on equal-cost paths retained per pair (memory guard).
    max_paths: usize,
}

/// Default cap on the number of equal-cost paths stored per host pair.
pub const DEFAULT_MAX_ECMP_PATHS: usize = 16;

impl RouteTable {
    /// Compute all-pairs equal-cost shortest paths among `topo`'s hosts,
    /// keeping at most [`DEFAULT_MAX_ECMP_PATHS`] per pair.
    pub fn new(topo: &Topology) -> Self {
        Self::with_max_paths(topo, DEFAULT_MAX_ECMP_PATHS)
    }

    /// As [`RouteTable::new`] but with an explicit cap per pair.
    pub fn with_max_paths(topo: &Topology, max_paths: usize) -> Self {
        assert!(max_paths >= 1, "must keep at least one path per pair");
        let hosts = topo.hosts();
        let mut host_index = vec![None; topo.node_count()];
        for (i, h) in hosts.iter().enumerate() {
            host_index[h.0 as usize] = Some(i as u32);
        }
        let mut paths = Vec::with_capacity(hosts.len());
        for &src in hosts {
            paths.push(Self::bfs_all(topo, src, max_paths));
        }
        RouteTable { paths, host_index, max_paths }
    }

    /// BFS from `src`, enumerating equal-cost shortest paths to every host.
    fn bfs_all(topo: &Topology, src: NodeId, max_paths: usize) -> Vec<Vec<Path>> {
        let n = topo.node_count();
        let mut dist = vec![u32::MAX; n];
        // preds[v] = (pred node, link) pairs on *some* shortest path
        let mut preds: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); n];
        dist[src.0 as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u.0 as usize];
            for &(v, l) in topo.neighbors(u) {
                let dv = &mut dist[v.0 as usize];
                if *dv == u32::MAX {
                    *dv = du + 1;
                    preds[v.0 as usize].push((u, l));
                    q.push_back(v);
                } else if *dv == du + 1 {
                    preds[v.0 as usize].push((u, l));
                }
            }
        }
        topo.hosts()
            .iter()
            .map(|&dst| {
                if dst == src {
                    return vec![Path { src, dst, hops: Vec::new() }];
                }
                if dist[dst.0 as usize] == u32::MAX {
                    return Vec::new(); // disconnected
                }
                let mut acc = Vec::new();
                let mut stack = Vec::new();
                Self::unwind(topo, &preds, src, dst, &mut stack, &mut acc, max_paths);
                acc
            })
            .collect()
    }

    /// Depth-first unwinding of the predecessor DAG from `dst` back to `src`.
    fn unwind(
        topo: &Topology,
        preds: &[Vec<(NodeId, LinkId)>],
        src: NodeId,
        cur: NodeId,
        stack: &mut Vec<DirectedHop>,
        acc: &mut Vec<Path>,
        max_paths: usize,
    ) {
        if acc.len() >= max_paths {
            return;
        }
        if cur == src {
            let mut hops = stack.clone();
            hops.reverse();
            acc.push(Path { src, dst: Self::path_dst(topo, src, &hops), hops });
            return;
        }
        for &(p, l) in &preds[cur.0 as usize] {
            let dir = topo.link(l).dir_from(p);
            stack.push(DirectedHop { link: l, dir });
            Self::unwind(topo, preds, src, p, stack, acc, max_paths);
            stack.pop();
            if acc.len() >= max_paths {
                return;
            }
        }
    }

    fn path_dst(topo: &Topology, src: NodeId, hops: &[DirectedHop]) -> NodeId {
        let mut cur = src;
        for h in hops {
            cur = topo.link(h.link).head(h.dir);
        }
        cur
    }

    fn idx(&self, host: NodeId) -> usize {
        self.host_index[host.0 as usize].unwrap_or_else(|| panic!("{host:?} is not a host"))
            as usize
    }

    /// All equal-cost shortest paths from `src` to `dst` (both hosts).
    pub fn paths(&self, src: NodeId, dst: NodeId) -> &[Path] {
        &self.paths[self.idx(src)][self.idx(dst)]
    }

    /// The path a flow with hash `flow_hash` uses (ECMP selection).
    ///
    /// Deterministic: the same hash always picks the same path.
    pub fn path_for_flow(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> &Path {
        let ps = self.paths(src, dst);
        assert!(!ps.is_empty(), "no path from {src:?} to {dst:?}");
        // Mix the hash so consecutive flow ids spread across paths.
        let mixed = splitmix64(flow_hash);
        &ps[(mixed % ps.len() as u64) as usize]
    }

    /// Number of links on the shortest path between two hosts
    /// (0 iff same host).
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        self.paths(src, dst).first().map_or(usize::MAX, Path::len)
    }

    /// The configured cap on stored equal-cost paths per pair.
    pub fn max_paths(&self) -> usize {
        self.max_paths
    }
}

/// SplitMix64: cheap, well-distributed 64-bit mixer for ECMP hashing.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkSpec, NodeKind, Topology};
    use crate::units::{GBIT, MICROS};

    /// Two hosts connected via two parallel 2-hop routes (ECMP diamond).
    fn diamond() -> Topology {
        let mut b = Topology::builder();
        let h0 = b.node(NodeKind::Host, "h0");
        let h1 = b.node(NodeKind::Host, "h1");
        let s0 = b.node(NodeKind::Tor, "s0");
        let s1 = b.node(NodeKind::Tor, "s1");
        let spec = LinkSpec::new(GBIT, MICROS);
        b.link(h0, s0, spec);
        b.link(h0, s1, spec);
        b.link(s0, h1, spec);
        b.link(s1, h1, spec);
        b.build()
    }

    #[test]
    fn diamond_has_two_equal_cost_paths() {
        let t = diamond();
        let rt = RouteTable::new(&t);
        let ps = rt.paths(NodeId(0), NodeId(1));
        assert_eq!(ps.len(), 2);
        for p in ps {
            assert_eq!(p.len(), 2);
            let nodes = p.nodes(&t);
            assert_eq!(nodes.first(), Some(&NodeId(0)));
            assert_eq!(nodes.last(), Some(&NodeId(1)));
        }
        // The two paths traverse different middle switches.
        let mids: Vec<NodeId> = ps.iter().map(|p| p.nodes(&t)[1]).collect();
        assert_ne!(mids[0], mids[1]);
    }

    #[test]
    fn ecmp_selection_is_deterministic_and_spreads() {
        let t = diamond();
        let rt = RouteTable::new(&t);
        let p1 = rt.path_for_flow(NodeId(0), NodeId(1), 7).clone();
        let p2 = rt.path_for_flow(NodeId(0), NodeId(1), 7).clone();
        assert_eq!(p1, p2);
        // Over many hashes, both paths get used.
        let mut seen = std::collections::HashSet::new();
        for h in 0..64u64 {
            seen.insert(rt.path_for_flow(NodeId(0), NodeId(1), h).hops.clone());
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn hop_count_same_host_is_zero() {
        let t = diamond();
        let rt = RouteTable::new(&t);
        assert_eq!(rt.hop_count(NodeId(0), NodeId(0)), 0);
        assert_eq!(rt.hop_count(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn path_nodes_are_contiguous() {
        let t = diamond();
        let rt = RouteTable::new(&t);
        for p in rt.paths(NodeId(0), NodeId(1)) {
            let nodes = p.nodes(&t);
            assert_eq!(nodes.len(), p.len() + 1);
        }
    }

    #[test]
    fn max_paths_caps_enumeration() {
        let t = diamond();
        let rt = RouteTable::with_max_paths(&t, 1);
        assert_eq!(rt.paths(NodeId(0), NodeId(1)).len(), 1);
        assert_eq!(rt.max_paths(), 1);
    }

    #[test]
    fn self_path_is_empty() {
        let t = diamond();
        let rt = RouteTable::new(&t);
        let ps = rt.paths(NodeId(0), NodeId(0));
        assert_eq!(ps.len(), 1);
        assert!(ps[0].is_empty());
    }

    #[test]
    fn splitmix_distributes() {
        // Not a statistical test; just confirm consecutive inputs diverge.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }
}
