//! Canned topology generators.
//!
//! * [`dumbbell`] — the ns-2 "simple topology" of Fig. 3(a): N sender hosts
//!   and N receiver hosts on opposite sides of one shared bottleneck link.
//! * [`two_rack`] — the ns-2 "cloud topology" of Fig. 3(b): two racks of
//!   hosts behind ToR switches joined by an aggregation switch, with
//!   1 Gbit/s edge links and 10 Gbit/s ToR↔agg links.
//! * [`MultiRootedTreeSpec`] — the general multi-tier datacenter tree of
//!   Fig. 5, optionally with a second aggregation tier so that the longest
//!   host-to-host paths are 8 hops, matching the EC2 path-length set
//!   {1, 2, 4, 6, 8} observed in §4.2.

use crate::graph::{LinkSpec, NodeId, NodeKind, Topology};
use crate::units::{GBIT, MICROS};

/// Fig. 3(a): `n_pairs` senders S1..Sn and receivers R1..Rn joined by one
/// shared full-duplex link of `shared` capacity; host access links use
/// `edge`. Hosts are ordered S1..Sn, R1..Rn in `topology.hosts()`.
pub fn dumbbell(n_pairs: usize, edge: LinkSpec, shared: LinkSpec) -> Topology {
    assert!(n_pairs >= 1);
    let mut b = Topology::builder();
    let senders = b.hosts(n_pairs, "s");
    let receivers = b.hosts(n_pairs, "r");
    let left = b.node(NodeKind::Tor, "left");
    let right = b.node(NodeKind::Tor, "right");
    for &s in &senders {
        b.link(s, left, edge);
    }
    for &r in &receivers {
        b.link(r, right, edge);
    }
    b.link(left, right, shared);
    b.build()
}

/// Fig. 3(b): two racks of `hosts_per_rack` hosts each. Rack links are
/// `edge` (1 Gbit/s in the paper); ToR↔aggregate links are `uplink`
/// (10 Gbit/s in the paper). Hosts are ordered rack-0 then rack-1.
pub fn two_rack(hosts_per_rack: usize, edge: LinkSpec, uplink: LinkSpec) -> Topology {
    assert!(hosts_per_rack >= 1);
    let mut b = Topology::builder();
    let rack0 = b.hosts(hosts_per_rack, "s");
    let rack1 = b.hosts(hosts_per_rack, "r");
    let tor0 = b.node(NodeKind::Tor, "tor-0");
    let tor1 = b.node(NodeKind::Tor, "tor-1");
    let agg = b.node(NodeKind::Agg, "agg");
    for &h in &rack0 {
        b.link(h, tor0, edge);
    }
    for &h in &rack1 {
        b.link(h, tor1, edge);
    }
    b.link(tor0, agg, uplink);
    b.link(tor1, agg, uplink);
    b.build()
}

/// Parameters for a multi-rooted datacenter tree (Fig. 5).
///
/// The tree has `cores` roots. Below them sit `pods` pods; each pod has
/// `aggs_per_pod` aggregation switches, each connected to every core.
/// Each pod contains `tors_per_pod` ToR switches, each connected to every
/// aggregation switch in its pod, and each ToR serves `hosts_per_tor`
/// hosts.
///
/// With `second_agg_tier == true`, each pod's aggregation switches connect
/// to the cores through an extra tier (one `Agg2` switch per pod), making
/// inter-pod paths 8 hops instead of 6 — the deeper trees the paper infers
/// from 8-hop EC2 traceroutes.
#[derive(Debug, Clone)]
pub struct MultiRootedTreeSpec {
    /// Number of core switches (roots).
    pub cores: usize,
    /// Number of pods (subtrees).
    pub pods: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Hosts per ToR switch.
    pub hosts_per_tor: usize,
    /// Host ↔ ToR link.
    pub host_link: LinkSpec,
    /// ToR ↔ aggregation link.
    pub tor_link: LinkSpec,
    /// Aggregation ↔ core (or Agg2, if present) link.
    pub agg_link: LinkSpec,
    /// Insert a second aggregation tier (8-hop inter-pod paths).
    pub second_agg_tier: bool,
}

impl Default for MultiRootedTreeSpec {
    /// A small 3-tier tree: 2 cores, 2 pods × 2 aggs × 2 ToRs × 4 hosts
    /// (16 hosts), 1 Gbit/s edges, 10 Gbit/s fabric links, 5 µs hops.
    fn default() -> Self {
        MultiRootedTreeSpec {
            cores: 2,
            pods: 2,
            aggs_per_pod: 2,
            tors_per_pod: 2,
            hosts_per_tor: 4,
            host_link: LinkSpec::new(GBIT, 5 * MICROS),
            tor_link: LinkSpec::new(10.0 * GBIT, 5 * MICROS),
            agg_link: LinkSpec::new(10.0 * GBIT, 5 * MICROS),
            second_agg_tier: false,
        }
    }
}

impl MultiRootedTreeSpec {
    /// Total number of hosts the spec will generate.
    pub fn host_count(&self) -> usize {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }

    /// Build the topology. Hosts appear in `topology.hosts()` grouped by
    /// pod, then ToR, then host index.
    pub fn build(&self) -> Topology {
        assert!(self.cores >= 1 && self.pods >= 1);
        assert!(self.aggs_per_pod >= 1 && self.tors_per_pod >= 1 && self.hosts_per_tor >= 1);
        let mut b = Topology::builder();
        let cores: Vec<NodeId> =
            (0..self.cores).map(|i| b.node(NodeKind::Core, format!("core-{i}"))).collect();
        for p in 0..self.pods {
            // Optional second aggregation tier: one Agg2 per pod between
            // the pod's aggs and the cores.
            let agg2 = if self.second_agg_tier {
                let a2 = b.node(NodeKind::Agg2, format!("agg2-{p}"));
                for &c in &cores {
                    b.link(a2, c, self.agg_link);
                }
                Some(a2)
            } else {
                None
            };
            let aggs: Vec<NodeId> = (0..self.aggs_per_pod)
                .map(|a| b.node(NodeKind::Agg, format!("agg-{p}-{a}")))
                .collect();
            for &a in &aggs {
                match agg2 {
                    Some(a2) => {
                        b.link(a, a2, self.agg_link);
                    }
                    None => {
                        for &c in &cores {
                            b.link(a, c, self.agg_link);
                        }
                    }
                }
            }
            for t in 0..self.tors_per_pod {
                let tor = b.node(NodeKind::Tor, format!("tor-{p}-{t}"));
                for &a in &aggs {
                    b.link(tor, a, self.tor_link);
                }
                for h in 0..self.hosts_per_tor {
                    let host = b.node(NodeKind::Host, format!("host-{p}-{t}-{h}"));
                    b.link(host, tor, self.host_link);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteTable;
    use crate::units::MILLIS;

    #[test]
    fn dumbbell_shape() {
        let edge = LinkSpec::new(GBIT, 5 * MICROS);
        let shared = LinkSpec::new(GBIT, MILLIS);
        let t = dumbbell(10, edge, shared);
        assert_eq!(t.hosts().len(), 20);
        // 20 edge links + 1 shared.
        assert_eq!(t.link_count(), 21);
        let rt = RouteTable::new(&t);
        // sender 0 -> receiver 0 crosses 3 links.
        assert_eq!(rt.hop_count(t.hosts()[0], t.hosts()[10]), 3);
        // sender 0 -> sender 1 crosses 2 links (same switch).
        assert_eq!(rt.hop_count(t.hosts()[0], t.hosts()[1]), 2);
    }

    #[test]
    fn two_rack_shape() {
        let t =
            two_rack(10, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(10.0 * GBIT, 5 * MICROS));
        assert_eq!(t.hosts().len(), 20);
        let rt = RouteTable::new(&t);
        // same rack: 2 hops, cross rack: 4 hops.
        assert_eq!(rt.hop_count(t.hosts()[0], t.hosts()[1]), 2);
        assert_eq!(rt.hop_count(t.hosts()[0], t.hosts()[10]), 4);
    }

    #[test]
    fn three_tier_tree_hop_counts() {
        let spec = MultiRootedTreeSpec::default();
        let t = spec.build();
        assert_eq!(t.hosts().len(), spec.host_count());
        let rt = RouteTable::new(&t);
        let h = t.hosts();
        // Same ToR: 2 hops.
        assert_eq!(rt.hop_count(h[0], h[1]), 2);
        // Same pod, different ToR: 4 hops.
        assert_eq!(rt.hop_count(h[0], h[4]), 4);
        // Different pod: 6 hops.
        assert_eq!(rt.hop_count(h[0], h[8]), 6);
    }

    #[test]
    fn four_tier_tree_gives_8_hop_paths() {
        let spec = MultiRootedTreeSpec { second_agg_tier: true, ..Default::default() };
        let t = spec.build();
        let rt = RouteTable::new(&t);
        let h = t.hosts();
        assert_eq!(rt.hop_count(h[0], h[8]), 8);
        // Intra-pod distances unchanged.
        assert_eq!(rt.hop_count(h[0], h[1]), 2);
        assert_eq!(rt.hop_count(h[0], h[4]), 4);
    }

    #[test]
    fn all_host_pair_hops_are_even() {
        // §3.3.1: all inter-host paths use an even number of hops.
        let spec = MultiRootedTreeSpec { second_agg_tier: true, ..Default::default() };
        let t = spec.build();
        let rt = RouteTable::new(&t);
        for &a in t.hosts() {
            for &b in t.hosts() {
                if a != b {
                    assert_eq!(rt.hop_count(a, b) % 2, 0, "{a:?}->{b:?}");
                }
            }
        }
    }

    #[test]
    fn ecmp_multiplicity_matches_fabric() {
        // 2 aggs per pod and 2 cores: intra-pod cross-ToR pairs have 2
        // equal-cost paths; inter-pod pairs have up to 2*2*2 = 8.
        let spec = MultiRootedTreeSpec::default();
        let t = spec.build();
        let rt = RouteTable::new(&t);
        let h = t.hosts();
        assert_eq!(rt.paths(h[0], h[4]).len(), 2);
        assert_eq!(rt.paths(h[0], h[8]).len(), 8);
    }
}
