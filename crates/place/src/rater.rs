//! Candidate-rate sources for the greedy placer's batched evaluation.
//!
//! Algorithm 1's inner loop asks, per transfer, "what raw rate does the
//! network offer between VMs `m` and `n`?" for every feasible candidate
//! pair. [`CandidateRater`] answers that question **in batches — one
//! round-trip per transfer instead of one query per pair** — so a backend
//! that can score many candidates against a single network state (the
//! flow cloud's batched what-if solver) pays one solve per transfer, not
//! `O(V²)`. The placer applies the hose/pipe sharing adjustment for
//! transfers it has already placed on top of these raw rates itself.
//!
//! Two implementations:
//!
//! * [`SnapshotRater`] — reads a measured [`NetworkSnapshot`] (the
//!   paper's workflow: measure once, place many).
//! * [`BackendRater`] — probes a live [`MeasureBackend`] per batch, so
//!   placement sees the network as it is *right now* rather than as it
//!   was at the last snapshot.

use choreo_measure::{MeasureBackend, NetworkSnapshot, RateModel};
use choreo_topology::VmId;

/// Batched source of raw (sharing-unadjusted) inter-VM rates.
///
/// Contract: rates must be stable for the lifetime of one `place()` call —
/// the placer caches them per VM pair and never re-queries a pair it has
/// seen (the [`crate::greedy::GreedyPlacer`] `RateCache` filters the
/// batch).
pub trait CandidateRater {
    /// Number of VMs the rater covers.
    fn n_vms(&self) -> usize;

    /// The sharing model the placer should apply on top of raw rates.
    fn model(&self) -> RateModel;

    /// Raw path rate estimates: fills `out[i]` for `pairs[i]`, where each
    /// pair is `(source VM, destination VM)` with distinct endpoints.
    fn path_rates(&mut self, pairs: &[(u32, u32)], out: &mut Vec<f64>);

    /// Raw hose (egress) rate of a VM — the denominator of the hose
    /// sharing rule. Only called when [`CandidateRater::model`] is
    /// [`RateModel::Hose`].
    fn hose_rate(&mut self, vm: u32) -> f64;
}

/// Rater over a measured [`NetworkSnapshot`].
#[derive(Debug)]
pub struct SnapshotRater<'a> {
    /// The snapshot to read rates from.
    pub snapshot: &'a NetworkSnapshot,
}

impl CandidateRater for SnapshotRater<'_> {
    fn n_vms(&self) -> usize {
        self.snapshot.n_vms()
    }

    fn model(&self) -> RateModel {
        self.snapshot.model
    }

    fn path_rates(&mut self, pairs: &[(u32, u32)], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(pairs.len());
        for &(m, n) in pairs {
            out.push(self.snapshot.rate(VmId(m), VmId(n)));
        }
    }

    fn hose_rate(&mut self, vm: u32) -> f64 {
        self.snapshot.hose_rate(VmId(vm))
    }
}

/// Rater that probes a live [`MeasureBackend`] — placement against the
/// network's *current* state.
///
/// Path rates go through [`MeasureBackend::probe_paths`], so a backend
/// with a batched what-if solver (the flow cloud) answers a whole
/// transfer's candidate set with one solve. A full raw-rate memo
/// guarantees **every ordered pair is probed at most once per placement**,
/// whether it is first requested as a candidate or as part of a hose row —
/// so one measurement is one number, and probe (and noise) cost is bounded
/// by the mesh size.
pub struct BackendRater<'a, B: MeasureBackend> {
    backend: &'a mut B,
    model: RateModel,
    n_vms: usize,
    /// Row-major raw-rate memo (`NaN` = not yet probed).
    raw: Vec<f64>,
    /// Per-VM hose memo (`NaN` = not yet derived). The hose estimate is
    /// the row maximum of probed rates, like
    /// [`NetworkSnapshot::hose_rate`]'s definition.
    hose: Vec<f64>,
    /// Scratch: `(VmId, VmId)` misses of the current batch.
    pair_scratch: Vec<(VmId, VmId)>,
    /// Scratch: backend output for `pair_scratch`.
    rate_scratch: Vec<f64>,
}

impl<'a, B: MeasureBackend> BackendRater<'a, B> {
    /// Rater over `backend` with the given sharing model.
    pub fn new(backend: &'a mut B, model: RateModel) -> Self {
        let n = backend.n_vms();
        BackendRater {
            backend,
            model,
            n_vms: n,
            raw: vec![f64::NAN; n * n],
            hose: vec![f64::NAN; n],
            pair_scratch: Vec::new(),
            rate_scratch: Vec::new(),
        }
    }

    /// Probe the not-yet-memoized pairs of `pair_scratch` (as one batch)
    /// and commit them to the memo.
    fn probe_misses(&mut self) {
        let (raw, n) = (&self.raw, self.n_vms);
        self.pair_scratch.retain(|&(a, b)| raw[a.0 as usize * n + b.0 as usize].is_nan());
        if self.pair_scratch.is_empty() {
            return;
        }
        self.backend.probe_paths(&self.pair_scratch, &mut self.rate_scratch);
        for (&(a, b), &r) in self.pair_scratch.iter().zip(&self.rate_scratch) {
            self.raw[a.0 as usize * self.n_vms + b.0 as usize] = r;
        }
    }
}

impl<B: MeasureBackend> CandidateRater for BackendRater<'_, B> {
    fn n_vms(&self) -> usize {
        self.n_vms
    }

    fn model(&self) -> RateModel {
        self.model
    }

    fn path_rates(&mut self, pairs: &[(u32, u32)], out: &mut Vec<f64>) {
        self.pair_scratch.clear();
        self.pair_scratch.extend(pairs.iter().map(|&(m, n)| (VmId(m), VmId(n))));
        self.probe_misses();
        out.clear();
        out.extend(pairs.iter().map(|&(m, n)| self.raw[m as usize * self.n_vms + n as usize]));
    }

    fn hose_rate(&mut self, vm: u32) -> f64 {
        if self.hose[vm as usize].is_nan() {
            // Complete the VM's egress row (probing only unseen pairs)
            // and keep the maximum.
            let n = self.n_vms as u32;
            self.pair_scratch.clear();
            self.pair_scratch.extend((0..n).filter(|&j| j != vm).map(|j| (VmId(vm), VmId(j))));
            self.probe_misses();
            let row = &self.raw[vm as usize * self.n_vms..(vm as usize + 1) * self.n_vms];
            self.hose[vm as usize] =
                row.iter().filter(|r| !r.is_nan()).fold(0.0, |a, &b| f64::max(a, b));
        }
        self.hose[vm as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_rater_reads_rates_and_hoses() {
        let rates = vec![
            0.0, 10.0, 20.0, //
            15.0, 0.0, 30.0, //
            25.0, 35.0, 0.0,
        ];
        let snap = NetworkSnapshot::from_rates(3, rates, RateModel::Hose);
        let mut rater = SnapshotRater { snapshot: &snap };
        assert_eq!(rater.n_vms(), 3);
        assert_eq!(rater.model(), RateModel::Hose);
        let mut out = Vec::new();
        rater.path_rates(&[(0, 1), (2, 1), (1, 0)], &mut out);
        assert_eq!(out, vec![10.0, 35.0, 15.0]);
        assert_eq!(rater.hose_rate(0), 20.0);
        assert_eq!(rater.hose_rate(2), 35.0);
    }

    struct CountingBackend {
        n: usize,
        probes: usize,
        batches: usize,
    }

    impl MeasureBackend for CountingBackend {
        fn n_vms(&self) -> usize {
            self.n
        }
        fn probe_path(&mut self, a: VmId, b: VmId) -> f64 {
            self.probes += 1;
            ((a.0 + 1) * 10 + b.0 + 1) as f64
        }
        fn probe_paths(&mut self, pairs: &[(VmId, VmId)], out: &mut Vec<f64>) {
            self.batches += 1;
            out.clear();
            for &(a, b) in pairs {
                let r = self.probe_path(a, b);
                out.push(r);
            }
        }
        fn netperf(&mut self, a: VmId, b: VmId, _d: choreo_topology::Nanos) -> f64 {
            self.probe_path(a, b)
        }
        fn concurrent_netperf(
            &mut self,
            pairs: &[(VmId, VmId)],
            _d: choreo_topology::Nanos,
        ) -> Vec<f64> {
            pairs.iter().map(|&(a, b)| self.probe_path(a, b)).collect()
        }
        fn traceroute(&mut self, _a: VmId, _b: VmId) -> usize {
            4
        }
    }

    #[test]
    fn backend_rater_batches_and_memoizes_hoses() {
        let mut b = CountingBackend { n: 3, probes: 0, batches: 0 };
        let mut rater = BackendRater::new(&mut b, RateModel::Hose);
        let mut out = Vec::new();
        rater.path_rates(&[(0, 1), (0, 2), (1, 2)], &mut out);
        assert_eq!(out, vec![12.0, 13.0, 23.0]);
        // Hose of VM 1 = max over its row; derived once, then memoized.
        assert_eq!(rater.hose_rate(1), 23.0);
        assert_eq!(rater.hose_rate(1), 23.0);
        // Re-requesting memoized pairs must not touch the backend again.
        rater.path_rates(&[(0, 2), (1, 2)], &mut out);
        assert_eq!(out, vec![13.0, 23.0]);
        let (batches, probes) = {
            let r = &rater;
            (r.backend.batches, r.backend.probes)
        };
        assert_eq!(batches, 2, "one candidate batch + one hose-row completion");
        assert_eq!(probes, 4, "3 candidates + 1 unseen hose-row pair: (1,2) is memoized");
    }
}
