//! Choreo's placement subsystem (paper §5 + Appendix, evaluated in §6).
//!
//! Given an application profile (tasks, CPU demands, traffic matrix) and a
//! measured [`choreo_measure::NetworkSnapshot`], produce an assignment of
//! tasks to VMs that minimizes completion time:
//!
//! * [`greedy`] — **Algorithm 1**: walk transfers in descending byte order
//!   and put each on the fastest feasible path, modelling already-placed
//!   transfers with either the hose or pipe sharing rule. Near-optimal in
//!   practice (§5: median 13% above optimal over 111 applications) and fast.
//! * [`ilp`] — the Appendix's exact formulation (binary `X_jm`,
//!   linearization variables `z_imjn`, minimax completion objective),
//!   solved by `choreo-lp`'s branch-and-bound.
//! * [`baseline`] — the three comparison placers from §6: Random,
//!   Round-Robin, and Minimum-Machines.
//! * [`predict`] — closed-form completion-time prediction for a placement
//!   under a snapshot (the objective both placers optimize).
//! * [`problem`] — shared vocabulary: machine capacities, placements,
//!   validation, and the [`NetworkLoad`] bookkeeping that lets sequence
//!   placement (§2.4/§6.3) account for transfers already in flight.
//! * [`rater`] — batched candidate-rate sources: the greedy placer asks
//!   for raw inter-VM rates one batch per transfer, served from a
//!   snapshot ([`SnapshotRater`]) or probed live from a measurement
//!   backend ([`BackendRater`], one what-if solve per batch on the flow
//!   cloud).

pub mod baseline;
pub mod constraints;
pub mod greedy;
pub mod ilp;
pub mod predict;
pub mod problem;
pub mod rater;

pub use baseline::{MinMachinesPlacer, RandomPlacer, RoundRobinPlacer};
pub use constraints::{ConstrainedGreedyPlacer, Constraints};
pub use greedy::GreedyPlacer;
pub use ilp::{IlpPlacer, IlpPlacerOutcome};
pub use predict::predict_completion_secs;
pub use problem::{Machines, NetworkLoad, PlaceError, Placement};
pub use rater::{BackendRater, CandidateRater, SnapshotRater};
