//! Placement constraints beyond CPU (paper §9 / the authors' technical report MIT-CSAIL-TR-2013-003).
//!
//! The conclusion names two tenant requirements Choreo should support:
//! tasks that are "latency-constrained" (keep a pair within a hop budget)
//! and tasks "placed far apart for fault tolerance purposes"
//! (anti-affinity). Both "can be formulated as part of our optimization
//! problem"; this module adds them to the greedy path too:
//!
//! * **anti-affinity** — a task pair must land on *different* VMs (and,
//!   when hop information is available, not on co-located VMs either);
//! * **affinity** — a task pair must land on the *same* VM (e.g. a
//!   sidecar);
//! * **hop bound** — a task pair's VMs must be within `max_hops`
//!   traceroute hops (a latency proxy in multi-rooted trees, where every
//!   hop adds a switch traversal).
//!
//! [`ConstrainedGreedyPlacer`] wraps Algorithm 1's candidate enumeration
//! with a feasibility filter and validates the final placement.

use choreo_measure::NetworkSnapshot;
use choreo_profile::AppProfile;
use choreo_topology::VmId;

use crate::greedy::GreedyPlacer;
use crate::problem::{Machines, NetworkLoad, PlaceError, Placement};

/// Declarative constraints over task pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Constraints {
    /// Pairs that must not share a VM (fault tolerance).
    pub anti_affinity: Vec<(usize, usize)>,
    /// Pairs that must share a VM.
    pub affinity: Vec<(usize, usize)>,
    /// `(i, j, max_hops)`: VMs of `i` and `j` must be within this many
    /// hops (requires the snapshot to carry hop counts).
    pub max_hops: Vec<(usize, usize, usize)>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.anti_affinity.is_empty() && self.affinity.is_empty() && self.max_hops.is_empty()
    }

    /// Check internal consistency against an application (indices in
    /// range, no pair both affine and anti-affine).
    pub fn validate_against(&self, app: &AppProfile) -> Result<(), String> {
        let n = app.n_tasks();
        let norm = |&(a, b): &(usize, usize)| (a.min(b), a.max(b));
        for &(a, b) in self.anti_affinity.iter().chain(self.affinity.iter()) {
            if a >= n || b >= n {
                return Err(format!("constraint references task {} of {n}", a.max(b)));
            }
            if a == b {
                return Err(format!("constraint pairs task {a} with itself"));
            }
        }
        for &(a, b, _) in &self.max_hops {
            if a >= n || b >= n {
                return Err(format!("hop constraint references task {} of {n}", a.max(b)));
            }
        }
        for aa in &self.anti_affinity {
            if self.affinity.iter().any(|af| norm(af) == norm(aa)) {
                return Err(format!("pair {aa:?} is both affine and anti-affine"));
            }
        }
        Ok(())
    }

    /// May tasks `i` and `j` be placed on VMs `m` and `n`?
    ///
    /// `hops(m, n)` should return the traceroute hop count (0 for the
    /// same VM); pass `None` when unavailable — hop constraints are then
    /// ignored (measured snapshots normally carry hops).
    pub fn pair_ok(
        &self,
        i: usize,
        j: usize,
        m: VmId,
        n: VmId,
        hops: Option<&dyn Fn(VmId, VmId) -> usize>,
    ) -> bool {
        let matches = |&(a, b): &(usize, usize)| (a == i && b == j) || (a == j && b == i);
        if self.anti_affinity.iter().any(matches) && m == n {
            return false;
        }
        if self.affinity.iter().any(matches) && m != n {
            return false;
        }
        if let Some(hops) = hops {
            for &(a, b, max) in &self.max_hops {
                if ((a == i && b == j) || (a == j && b == i)) && m != n && hops(m, n) > max {
                    return false;
                }
            }
        }
        true
    }

    /// Validate a complete placement.
    pub fn check_placement(
        &self,
        p: &Placement,
        hops: Option<&dyn Fn(VmId, VmId) -> usize>,
    ) -> Result<(), String> {
        for &(a, b) in &self.anti_affinity {
            if p.assignment[a] == p.assignment[b] {
                return Err(format!("anti-affinity violated: tasks {a},{b} share a VM"));
            }
        }
        for &(a, b) in &self.affinity {
            if p.assignment[a] != p.assignment[b] {
                return Err(format!("affinity violated: tasks {a},{b} split"));
            }
        }
        if let Some(hops) = hops {
            for &(a, b, max) in &self.max_hops {
                let (m, n) = (p.vm_of(a), p.vm_of(b));
                if m != n && hops(m, n) > max {
                    return Err(format!(
                        "hop bound violated: tasks {a},{b} are {} hops apart (max {max})",
                        hops(m, n)
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Greedy Algorithm 1 with a constraint filter.
///
/// Strategy: pre-merge affine pairs (they behave as one placement unit by
/// giving their transfers infinite preference anyway), then run the
/// greedy enumeration rejecting candidate pairs that violate constraints.
/// Implementation: run the standard greedy over a candidate filter by
/// retrying placement with banned choices when the unconstrained result
/// violates something. For the constraint densities tenants actually use
/// (a handful of pairs), rejection-retry converges immediately; pathological
/// instances fall back to an exhaustive first-fit that honors constraints.
#[derive(Debug, Clone, Default)]
pub struct ConstrainedGreedyPlacer {
    /// The constraints to enforce.
    pub constraints: Constraints,
}

impl ConstrainedGreedyPlacer {
    /// Place with constraints.
    pub fn place(
        &self,
        app: &AppProfile,
        machines: &Machines,
        snapshot: &NetworkSnapshot,
        load: &NetworkLoad,
    ) -> Result<Placement, PlaceError> {
        self.constraints
            .validate_against(app)
            .unwrap_or_else(|e| panic!("invalid constraints: {e}"));
        let hop_fn = snapshot.hops.as_ref().map(|h| {
            let n = snapshot.n_vms();
            let h = h.clone();
            move |a: VmId, b: VmId| h[a.0 as usize * n + b.0 as usize]
        });
        let hops_dyn: Option<&dyn Fn(VmId, VmId) -> usize> =
            hop_fn.as_ref().map(|f| f as &dyn Fn(VmId, VmId) -> usize);

        // Fast path: unconstrained greedy already satisfies everything.
        let unconstrained = GreedyPlacer.place(app, machines, snapshot, load)?;
        if self.constraints.is_empty()
            || self.constraints.check_placement(&unconstrained, hops_dyn).is_ok()
        {
            return Ok(unconstrained);
        }

        // Repair path: exhaustive constrained first-fit ordered by the
        // greedy's preference (heaviest transfers first, fastest pairs
        // first). Correct though not rate-optimal; constraint violations
        // are rare enough that the repair path is cold.
        self.constrained_first_fit(app, machines, snapshot, load, hops_dyn)
    }

    fn constrained_first_fit(
        &self,
        app: &AppProfile,
        machines: &Machines,
        snapshot: &NetworkSnapshot,
        load: &NetworkLoad,
        hops: Option<&dyn Fn(VmId, VmId) -> usize>,
    ) -> Result<Placement, PlaceError> {
        let n_tasks = app.n_tasks();
        let n_vms = machines.len();
        let mut assignment: Vec<Option<u32>> = vec![None; n_tasks];
        let mut cpu_used = load.cpu_used.clone();
        // Order tasks by total traffic (heaviest first) for better
        // network outcomes, then backtrack on constraint dead-ends.
        let mut order: Vec<usize> = (0..n_tasks).collect();
        order.sort_by_key(|&t| std::cmp::Reverse(app.matrix.egress(t) + app.matrix.ingress(t)));

        // For each task, prefer VMs with the highest measured hose rate.
        let mut vm_pref: Vec<u32> = (0..n_vms as u32).collect();
        vm_pref.sort_by(|&a, &b| {
            snapshot
                .hose_rate(VmId(b))
                .partial_cmp(&snapshot.hose_rate(VmId(a)))
                .expect("rates are not NaN")
        });

        /// The immutable context of one constrained first-fit search; the
        /// mutable `(assignment, cpu_used)` state threads through
        /// `backtrack` as the only loose parameters.
        struct Search<'a> {
            order: &'a [usize],
            vm_pref: &'a [u32],
            app: &'a AppProfile,
            machines: &'a Machines,
            constraints: &'a Constraints,
            hops: Option<&'a dyn Fn(VmId, VmId) -> usize>,
        }

        impl Search<'_> {
            fn backtrack(
                &self,
                idx: usize,
                assignment: &mut [Option<u32>],
                cpu_used: &mut [f64],
            ) -> bool {
                if idx == self.order.len() {
                    return true;
                }
                let task = self.order[idx];
                for &vm in self.vm_pref {
                    let used = cpu_used[vm as usize] + self.app.cpu[task];
                    if used > self.machines.cpu[vm as usize] + 1e-9 {
                        continue;
                    }
                    // Check pairwise constraints against placed tasks.
                    let ok = assignment.iter().enumerate().all(|(other, a)| match a {
                        Some(placed) => self.constraints.pair_ok(
                            task,
                            other,
                            VmId(vm),
                            VmId(*placed),
                            self.hops,
                        ),
                        None => true,
                    });
                    if !ok {
                        continue;
                    }
                    assignment[task] = Some(vm);
                    cpu_used[vm as usize] += self.app.cpu[task];
                    if self.backtrack(idx + 1, assignment, cpu_used) {
                        return true;
                    }
                    assignment[task] = None;
                    cpu_used[vm as usize] -= self.app.cpu[task];
                }
                false
            }
        }

        let search = Search {
            order: &order,
            vm_pref: &vm_pref,
            app,
            machines,
            constraints: &self.constraints,
            hops,
        };
        if search.backtrack(0, &mut assignment, &mut cpu_used) {
            let placement = Placement {
                assignment: assignment.into_iter().map(|a| a.expect("complete")).collect(),
            };
            debug_assert!(self.constraints.check_placement(&placement, hops).is_ok());
            Ok(placement)
        } else {
            Err(PlaceError::NoFeasibleMachine { task: order[0] })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choreo_measure::RateModel;
    use choreo_profile::TrafficMatrix;

    fn snap_with_hops(n: usize) -> NetworkSnapshot {
        let mut s = NetworkSnapshot::from_rates(n, vec![1e9; n * n], RateModel::Hose);
        // Hops: vm0/vm1 close (2), everything else far (6).
        let mut hops = vec![6usize; n * n];
        for i in 0..n {
            hops[i * n + i] = 0;
        }
        if n >= 2 {
            hops[1] = 2; // (0,1)
            hops[n] = 2; // (1,0)
        }
        s.hops = Some(hops);
        s
    }

    fn chatty_app(n: usize) -> AppProfile {
        let mut m = TrafficMatrix::zeros(n);
        m.set(0, 1, 1_000_000);
        AppProfile::new("c", vec![1.0; n], m, 0)
    }

    #[test]
    fn anti_affinity_splits_a_chatty_pair() {
        // Unconstrained greedy co-locates tasks 0,1; anti-affinity must
        // force them apart.
        let app = chatty_app(3);
        let machines = Machines::uniform(3, 4.0);
        let snap = snap_with_hops(3);
        let load = NetworkLoad::new(3);
        let free = GreedyPlacer.place(&app, &machines, &snap, &load).unwrap();
        assert_eq!(free.assignment[0], free.assignment[1], "baseline co-locates");
        let placer = ConstrainedGreedyPlacer {
            constraints: Constraints { anti_affinity: vec![(0, 1)], ..Default::default() },
        };
        let p = placer.place(&app, &machines, &snap, &load).unwrap();
        assert_ne!(p.assignment[0], p.assignment[1]);
    }

    #[test]
    fn affinity_joins_a_silent_pair() {
        let app = chatty_app(3); // tasks 1,2 exchange nothing
        let machines = Machines::uniform(3, 4.0);
        let snap = snap_with_hops(3);
        let placer = ConstrainedGreedyPlacer {
            constraints: Constraints { affinity: vec![(1, 2)], ..Default::default() },
        };
        let p = placer.place(&app, &machines, &snap, &NetworkLoad::new(3)).unwrap();
        assert_eq!(p.assignment[1], p.assignment[2]);
    }

    #[test]
    fn hop_bound_keeps_latency_pair_close() {
        let app = {
            let mut m = TrafficMatrix::zeros(3);
            m.set(0, 2, 1_000_000); // heavy pair pulls 0 and 2 together
            AppProfile::new("h", vec![2.5; 3], m, 0) // 2.5 cores: no co-location on 4-core VMs
        };
        let machines = Machines::uniform(3, 4.0);
        let snap = snap_with_hops(3);
        // Tasks 0 and 1 must sit within 2 hops: only VM pair (0,1) works.
        let placer = ConstrainedGreedyPlacer {
            constraints: Constraints { max_hops: vec![(0, 1, 2)], ..Default::default() },
        };
        let p = placer.place(&app, &machines, &snap, &NetworkLoad::new(3)).unwrap();
        let (a, b) = (p.assignment[0].min(p.assignment[1]), p.assignment[0].max(p.assignment[1]));
        assert_eq!((a, b), (0, 1), "latency pair pinned to the close VMs: {:?}", p.assignment);
    }

    #[test]
    fn unsatisfiable_constraints_error() {
        let app = chatty_app(2);
        let machines = Machines::uniform(1, 8.0); // one VM only
        let snap = snap_with_hops(1);
        let placer = ConstrainedGreedyPlacer {
            constraints: Constraints { anti_affinity: vec![(0, 1)], ..Default::default() },
        };
        assert!(placer.place(&app, &machines, &snap, &NetworkLoad::new(1)).is_err());
    }

    #[test]
    fn conflicting_constraints_rejected() {
        let c = Constraints {
            anti_affinity: vec![(0, 1)],
            affinity: vec![(1, 0)],
            ..Default::default()
        };
        assert!(c.validate_against(&chatty_app(2)).is_err());
    }

    #[test]
    fn empty_constraints_match_plain_greedy() {
        let app = chatty_app(4);
        let machines = Machines::uniform(4, 4.0);
        let snap = snap_with_hops(4);
        let load = NetworkLoad::new(4);
        let a = GreedyPlacer.place(&app, &machines, &snap, &load).unwrap();
        let b = ConstrainedGreedyPlacer::default().place(&app, &machines, &snap, &load).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pair_ok_semantics() {
        let c = Constraints {
            anti_affinity: vec![(0, 1)],
            affinity: vec![(2, 3)],
            max_hops: vec![(4, 5, 2)],
        };
        let hops = |a: VmId, b: VmId| if a.0 + b.0 == 1 { 2 } else { 6 };
        let h: &dyn Fn(VmId, VmId) -> usize = &hops;
        assert!(!c.pair_ok(0, 1, VmId(0), VmId(0), Some(h)), "anti-affinity same VM");
        assert!(c.pair_ok(0, 1, VmId(0), VmId(1), Some(h)));
        assert!(!c.pair_ok(3, 2, VmId(0), VmId(1), Some(h)), "affinity split");
        assert!(c.pair_ok(2, 3, VmId(1), VmId(1), Some(h)));
        assert!(c.pair_ok(4, 5, VmId(0), VmId(1), Some(h)), "2 hops ok");
        assert!(!c.pair_ok(5, 4, VmId(0), VmId(2), Some(h)), "6 hops too far");
        assert!(c.pair_ok(4, 5, VmId(0), VmId(2), None), "no hop info: ignored");
    }
}
