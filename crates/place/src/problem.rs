//! Shared placement vocabulary: machines, placements, load bookkeeping.

use choreo_profile::AppProfile;
use choreo_topology::VmId;

/// The tenant's rented VMs, by CPU capacity (§6.1: four cores each).
#[derive(Debug, Clone, PartialEq)]
pub struct Machines {
    /// CPU capacity per VM, cores.
    pub cpu: Vec<f64>,
}

impl Machines {
    /// `n` identical machines with `cores` each.
    pub fn uniform(n: usize, cores: f64) -> Self {
        assert!(n > 0 && cores > 0.0);
        Machines { cpu: vec![cores; n] }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.cpu.len()
    }

    /// True iff there are no machines.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
    }
}

/// An assignment of every task to a VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `assignment[task] = vm index`.
    pub assignment: Vec<u32>,
}

impl Placement {
    /// VM of a task.
    pub fn vm_of(&self, task: usize) -> VmId {
        VmId(self.assignment[task])
    }

    /// Number of distinct VMs used.
    pub fn machines_used(&self) -> usize {
        let mut v = self.assignment.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

/// Why a placement attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Total CPU demand cannot fit on the machines at all.
    InsufficientCpu,
    /// The placer could not find a feasible machine for a task
    /// (fragmentation or exhausted capacity).
    NoFeasibleMachine {
        /// Task that could not be placed.
        task: usize,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::InsufficientCpu => write!(f, "total CPU demand exceeds total capacity"),
            PlaceError::NoFeasibleMachine { task } => {
                write!(f, "no machine has room for task {task}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Check that a placement satisfies CPU constraints and covers all tasks.
pub fn validate(app: &AppProfile, machines: &Machines, p: &Placement) -> Result<(), PlaceError> {
    assert_eq!(p.assignment.len(), app.n_tasks(), "placement covers every task");
    let mut used = vec![0.0; machines.len()];
    for (task, &vm) in p.assignment.iter().enumerate() {
        let vm = vm as usize;
        assert!(vm < machines.len(), "task {task} assigned to unknown VM {vm}");
        used[vm] += app.cpu[task];
    }
    for (vm, &u) in used.iter().enumerate() {
        if u > machines.cpu[vm] + 1e-9 {
            return Err(PlaceError::NoFeasibleMachine { task: vm });
        }
    }
    Ok(())
}

/// Network and CPU load imposed by applications that are already running —
/// what sequence placement (§2.4) must account for when the next
/// application arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLoad {
    n_vms: usize,
    /// Concurrent transfers currently using each ordered VM pair.
    path_load: Vec<u32>,
    /// Concurrent transfers leaving each VM (hose accounting).
    egress_load: Vec<u32>,
    /// CPU cores consumed on each VM.
    pub cpu_used: Vec<f64>,
}

impl NetworkLoad {
    /// Empty load over `n_vms` machines.
    pub fn new(n_vms: usize) -> Self {
        NetworkLoad {
            n_vms,
            path_load: vec![0; n_vms * n_vms],
            egress_load: vec![0; n_vms],
            cpu_used: vec![0.0; n_vms],
        }
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.n_vms
    }

    /// Transfers currently on ordered pair `(a, b)`.
    pub fn on_path(&self, a: VmId, b: VmId) -> u32 {
        self.path_load[a.0 as usize * self.n_vms + b.0 as usize]
    }

    /// Transfers currently leaving `a`.
    pub fn egress(&self, a: VmId) -> u32 {
        self.egress_load[a.0 as usize]
    }

    /// Account a placed application's transfers and CPU.
    pub fn apply(&mut self, app: &AppProfile, p: &Placement) {
        self.update(app, p, true);
    }

    /// Remove a completed application's transfers and CPU.
    pub fn remove(&mut self, app: &AppProfile, p: &Placement) {
        self.update(app, p, false);
    }

    /// Network counters relative to a baseline (saturating), keeping CPU
    /// as-is. Used after a re-measurement: transfers that were already
    /// running when the network was measured are part of the measured
    /// rates and must not be double-counted by the placer; only load
    /// admitted *after* the measurement needs explicit accounting.
    pub fn network_since(&self, baseline: &NetworkLoad) -> NetworkLoad {
        assert_eq!(self.n_vms, baseline.n_vms);
        NetworkLoad {
            n_vms: self.n_vms,
            path_load: self
                .path_load
                .iter()
                .zip(&baseline.path_load)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            egress_load: self
                .egress_load
                .iter()
                .zip(&baseline.egress_load)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            cpu_used: self.cpu_used.clone(),
        }
    }

    /// Restrict the load to a subset of the VMs: entry `i` of the result
    /// describes `vms[i]`. Egress counters keep counting transfers that
    /// leave the subset (sharing at the source is a global property);
    /// path counters inside the subset are preserved, paths with an
    /// endpoint outside it are dropped.
    ///
    /// This is the right sub-view for placers working over **snapshot or
    /// cached** rates (and for CPU-only baselines — the online
    /// scheduler's random branch). Do **not** combine the projected
    /// network counters with *live* probe rates: probes already price in
    /// every running flow, so stacking the counters on top double-counts
    /// traffic (see `Choreo::place_live`; the online scheduler's greedy
    /// branch builds a CPU-only load for exactly this reason).
    pub fn project(&self, vms: &[u32]) -> NetworkLoad {
        let k = vms.len();
        let mut out = NetworkLoad::new(k);
        for (a, &va) in vms.iter().enumerate() {
            let va = va as usize;
            assert!(va < self.n_vms, "projected VM {va} out of range");
            out.egress_load[a] = self.egress_load[va];
            out.cpu_used[a] = self.cpu_used[va];
            for (b, &vb) in vms.iter().enumerate() {
                out.path_load[a * k + b] = self.path_load[va * self.n_vms + vb as usize];
            }
        }
        out
    }

    fn update(&mut self, app: &AppProfile, p: &Placement, add: bool) {
        for (i, j, _) in app.matrix.transfers_desc() {
            let (a, b) = (p.assignment[i] as usize, p.assignment[j] as usize);
            if a == b {
                continue; // same-VM transfers never touch the network
            }
            let path = &mut self.path_load[a * self.n_vms + b];
            let eg = &mut self.egress_load[a];
            if add {
                *path += 1;
                *eg += 1;
            } else {
                *path = path.saturating_sub(1);
                *eg = eg.saturating_sub(1);
            }
        }
        for (task, &vm) in p.assignment.iter().enumerate() {
            let c = &mut self.cpu_used[vm as usize];
            if add {
                *c += app.cpu[task];
            } else {
                *c = (*c - app.cpu[task]).max(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choreo_profile::TrafficMatrix;

    fn app2() -> AppProfile {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 100);
        m.set(1, 2, 50);
        AppProfile::new("t", vec![1.0, 2.0, 1.0], m, 0)
    }

    #[test]
    fn validate_accepts_feasible() {
        let app = app2();
        let machines = Machines::uniform(2, 4.0);
        let p = Placement { assignment: vec![0, 0, 1] };
        assert!(validate(&app, &machines, &p).is_ok());
    }

    #[test]
    fn validate_rejects_cpu_overflow() {
        let app = app2();
        let machines = Machines::uniform(2, 2.5);
        // 1 + 2 = 3 cores on machine 0 > 2.5.
        let p = Placement { assignment: vec![0, 0, 1] };
        assert!(validate(&app, &machines, &p).is_err());
    }

    #[test]
    fn machines_used_counts_distinct() {
        let p = Placement { assignment: vec![0, 0, 2, 2, 1] };
        assert_eq!(p.machines_used(), 3);
        assert_eq!(p.vm_of(2), VmId(2));
    }

    #[test]
    fn project_restricts_to_subset_but_keeps_global_egress() {
        let mut load = NetworkLoad::new(4);
        // Transfers: 0->1, 0->3, 2->3 (via a 4-task app placed 1:1).
        let m = TrafficMatrix::from_rows(
            4,
            vec![
                0, 1, 0, 1, //
                0, 0, 0, 0, //
                0, 0, 0, 1, //
                0, 0, 0, 0,
            ],
        );
        let bg = AppProfile::new("bg", vec![0.5; 4], m, 0);
        load.apply(&bg, &Placement { assignment: vec![0, 1, 2, 3] });
        let sub = load.project(&[0, 2]);
        assert_eq!(sub.n_vms(), 2);
        // Path 0->1 and 2->3 leave the subset: dropped from path counts.
        assert_eq!(sub.on_path(VmId(0), VmId(1)), 0);
        // Egress still counts every transfer leaving the VM.
        assert_eq!(sub.egress(VmId(0)), 2, "0->1 and 0->3 both leave VM 0");
        assert_eq!(sub.egress(VmId(1)), 1, "2->3 leaves VM 2");
        assert_eq!(sub.cpu_used, vec![0.5, 0.5]);
        // Identity projection preserves everything.
        let all = load.project(&[0, 1, 2, 3]);
        assert_eq!(all, load);
    }

    #[test]
    fn load_apply_and_remove_round_trip() {
        let app = app2();
        let mut load = NetworkLoad::new(3);
        let p = Placement { assignment: vec![0, 1, 1] };
        load.apply(&app, &p);
        // transfer 0->1 crosses VMs 0->1; transfer 1->2 is intra-VM 1.
        assert_eq!(load.on_path(VmId(0), VmId(1)), 1);
        assert_eq!(load.on_path(VmId(1), VmId(0)), 0);
        assert_eq!(load.egress(VmId(0)), 1);
        assert_eq!(load.egress(VmId(1)), 0, "intra-VM transfer stays local");
        assert_eq!(load.cpu_used, vec![1.0, 3.0, 0.0]);
        load.remove(&app, &p);
        assert_eq!(load, NetworkLoad::new(3));
    }
}
