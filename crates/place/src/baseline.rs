//! The three baseline placers Choreo is compared against (§6).
//!
//! None of them look at the network:
//!
//! * [`RandomPlacer`] — tasks land on random VMs with enough CPU.
//! * [`RoundRobinPlacer`] — tasks cycle through the VM list (a
//!   load-balancing placement).
//! * [`MinMachinesPlacer`] — tasks pack onto as few VMs as possible
//!   (a cost-minimizing placement).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use choreo_profile::AppProfile;

use crate::problem::{Machines, NetworkLoad, PlaceError, Placement};

fn check_total_cpu(
    app: &AppProfile,
    machines: &Machines,
    load: &NetworkLoad,
) -> Result<(), PlaceError> {
    let total: f64 = app.cpu.iter().sum();
    let free: f64 =
        machines.cpu.iter().zip(&load.cpu_used).map(|(cap, used)| (cap - used).max(0.0)).sum();
    if total > free + 1e-9 {
        Err(PlaceError::InsufficientCpu)
    } else {
        Ok(())
    }
}

/// Uniform random assignment subject to CPU constraints.
#[derive(Debug, Clone)]
pub struct RandomPlacer {
    rng: StdRng,
}

impl RandomPlacer {
    /// Seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomPlacer { rng: StdRng::seed_from_u64(seed) }
    }

    /// Place each task on a random VM with room.
    pub fn place(
        &mut self,
        app: &AppProfile,
        machines: &Machines,
        load: &NetworkLoad,
    ) -> Result<Placement, PlaceError> {
        check_total_cpu(app, machines, load)?;
        let mut used = load.cpu_used.clone();
        let mut assignment = Vec::with_capacity(app.n_tasks());
        for t in 0..app.n_tasks() {
            let feasible: Vec<usize> = (0..machines.len())
                .filter(|&m| used[m] + app.cpu[t] <= machines.cpu[m] + 1e-9)
                .collect();
            if feasible.is_empty() {
                return Err(PlaceError::NoFeasibleMachine { task: t });
            }
            let vm = feasible[self.rng.gen_range(0..feasible.len())];
            used[vm] += app.cpu[t];
            assignment.push(vm as u32);
        }
        Ok(Placement { assignment })
    }
}

/// Round-robin assignment: "a particular task is assigned to the next
/// machine in the list that has enough available CPU".
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPlacer {
    cursor: usize,
}

impl RoundRobinPlacer {
    /// Fresh placer starting at VM 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place tasks cycling through machines.
    pub fn place(
        &mut self,
        app: &AppProfile,
        machines: &Machines,
        load: &NetworkLoad,
    ) -> Result<Placement, PlaceError> {
        check_total_cpu(app, machines, load)?;
        let mut used = load.cpu_used.clone();
        let n = machines.len();
        let mut assignment = Vec::with_capacity(app.n_tasks());
        for t in 0..app.n_tasks() {
            let mut chosen = None;
            for probe in 0..n {
                let vm = (self.cursor + probe) % n;
                if used[vm] + app.cpu[t] <= machines.cpu[vm] + 1e-9 {
                    chosen = Some(vm);
                    break;
                }
            }
            let vm = chosen.ok_or(PlaceError::NoFeasibleMachine { task: t })?;
            used[vm] += app.cpu[t];
            assignment.push(vm as u32);
            self.cursor = (vm + 1) % n;
        }
        Ok(Placement { assignment })
    }
}

/// Packing placer: reuse machines until full, open new ones reluctantly.
#[derive(Debug, Clone, Default)]
pub struct MinMachinesPlacer;

impl MinMachinesPlacer {
    /// Place tasks onto the fewest machines (first-fit in index order,
    /// preferring machines that already host a task or carry load).
    pub fn place(
        &self,
        app: &AppProfile,
        machines: &Machines,
        load: &NetworkLoad,
    ) -> Result<Placement, PlaceError> {
        check_total_cpu(app, machines, load)?;
        let mut used = load.cpu_used.clone();
        let mut opened: Vec<bool> = used.iter().map(|&u| u > 0.0).collect();
        let mut assignment = Vec::with_capacity(app.n_tasks());
        for t in 0..app.n_tasks() {
            // First try machines already in use.
            let pick = (0..machines.len())
                .filter(|&m| opened[m])
                .find(|&m| used[m] + app.cpu[t] <= machines.cpu[m] + 1e-9)
                .or_else(|| {
                    (0..machines.len())
                        .filter(|&m| !opened[m])
                        .find(|&m| used[m] + app.cpu[t] <= machines.cpu[m] + 1e-9)
                });
            let vm = pick.ok_or(PlaceError::NoFeasibleMachine { task: t })?;
            used[vm] += app.cpu[t];
            opened[vm] = true;
            assignment.push(vm as u32);
        }
        Ok(Placement { assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::validate;
    use choreo_profile::TrafficMatrix;

    fn app(n: usize, cpu: f64) -> AppProfile {
        AppProfile::new("t", vec![cpu; n], TrafficMatrix::zeros(n), 0)
    }

    #[test]
    fn random_respects_cpu_and_is_seeded() {
        let a = app(8, 1.0);
        let machines = Machines::uniform(4, 2.0);
        let load = NetworkLoad::new(4);
        let p1 = RandomPlacer::new(7).place(&a, &machines, &load).unwrap();
        let p2 = RandomPlacer::new(7).place(&a, &machines, &load).unwrap();
        assert_eq!(p1, p2, "same seed, same placement");
        assert!(validate(&a, &machines, &p1).is_ok());
    }

    #[test]
    fn random_varies_across_seeds() {
        let a = app(8, 1.0);
        let machines = Machines::uniform(8, 4.0);
        let load = NetworkLoad::new(8);
        let p1 = RandomPlacer::new(1).place(&a, &machines, &load).unwrap();
        let p2 = RandomPlacer::new(2).place(&a, &machines, &load).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn round_robin_cycles() {
        let a = app(4, 1.0);
        let machines = Machines::uniform(4, 4.0);
        let p = RoundRobinPlacer::new().place(&a, &machines, &NetworkLoad::new(4)).unwrap();
        assert_eq!(p.assignment, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_full_machines() {
        let a = app(3, 2.0);
        let machines = Machines::uniform(4, 2.0);
        let mut load = NetworkLoad::new(4);
        load.cpu_used[1] = 2.0; // machine 1 already full
        let p = RoundRobinPlacer::new().place(&a, &machines, &load).unwrap();
        assert_eq!(p.assignment, vec![0, 2, 3]);
    }

    #[test]
    fn min_machines_packs() {
        let a = app(4, 1.0);
        let machines = Machines::uniform(4, 4.0);
        let p = MinMachinesPlacer.place(&a, &machines, &NetworkLoad::new(4)).unwrap();
        assert_eq!(p.machines_used(), 1, "all four 1-core tasks fit one 4-core VM");
    }

    #[test]
    fn min_machines_opens_only_when_needed() {
        let a = app(5, 2.0); // 10 cores total
        let machines = Machines::uniform(5, 4.0);
        let p = MinMachinesPlacer.place(&a, &machines, &NetworkLoad::new(5)).unwrap();
        assert_eq!(p.machines_used(), 3, "ceil(10/4) machines");
    }

    #[test]
    fn all_baselines_error_on_infeasible() {
        let a = app(3, 3.0);
        let machines = Machines::uniform(2, 4.0);
        let load = NetworkLoad::new(2);
        assert!(RandomPlacer::new(0).place(&a, &machines, &load).is_err());
        assert!(RoundRobinPlacer::new().place(&a, &machines, &load).is_err());
        assert!(MinMachinesPlacer.place(&a, &machines, &load).is_err());
    }

    #[test]
    fn fragmentation_reports_no_feasible_machine() {
        // Total CPU fits but no single machine can take the 2-core task.
        let mut a = app(3, 1.5);
        a.cpu = vec![1.5, 1.5, 2.0];
        let machines = Machines::uniform(3, 1.9);
        let load = NetworkLoad::new(3);
        let err = MinMachinesPlacer.place(&a, &machines, &load).unwrap_err();
        assert!(matches!(err, PlaceError::NoFeasibleMachine { task: 2 }));
    }
}
