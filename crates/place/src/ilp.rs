//! The Appendix's exact ILP placement, solved with `choreo-lp`.
//!
//! Variables: binaries `X_im` (task `i` on machine `m`), linearization
//! variables `z_imjn ≈ X_im·X_jn` for task pairs `i<j`, and a scalar `z`
//! bounding the completion time of every bottleneck resource. Objective:
//! minimize `z`.
//!
//! Two linearizations are provided:
//!
//! * [`Formulation::Paper`] — verbatim Appendix: `z_imjn ≤ X_im`,
//!   `z_imjn ≤ X_jn`, and per-task `Σ z = J−1` equalities that force the
//!   products up. Every task pair gets `M²` variables.
//! * [`Formulation::Sparse`] — the standard `z ≥ X_im + X_jn − 1` lower
//!   bound instead of the sum trick, which lets pairs that exchange no
//!   bytes be dropped entirely. Same optima, far smaller models on sparse
//!   traffic matrices (pipelines, scatter/gather).
//!
//! Only the `X` variables are declared integral: with integral `X`, the
//! constraints pin every `z_imjn` to the exact product.

use choreo_lp::{solve_ilp, IlpConfig, IlpOutcome, Lp, Relation};
use choreo_measure::{NetworkSnapshot, RateModel};
use choreo_profile::AppProfile;
use choreo_topology::VmId;

use crate::problem::{Machines, NetworkLoad, PlaceError, Placement};

/// Which linearization to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Formulation {
    /// The Appendix's `Σ z = J−1` formulation, all pairs.
    Paper,
    /// `z ≥ X + X − 1` on traffic-carrying pairs only.
    Sparse,
}

/// Exact (branch-and-bound) placer.
#[derive(Debug, Clone)]
pub struct IlpPlacer {
    /// Linearization choice.
    pub formulation: Formulation,
    /// Search budgets.
    pub config: IlpConfig,
}

impl Default for IlpPlacer {
    fn default() -> Self {
        IlpPlacer { formulation: Formulation::Sparse, config: IlpConfig::default() }
    }
}

/// Result of an exact placement.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpPlacerOutcome {
    /// The placement extracted from the incumbent.
    pub placement: Placement,
    /// Its predicted completion time, seconds.
    pub objective_secs: f64,
    /// True when branch-and-bound proved optimality within budget.
    pub proven_optimal: bool,
}

impl IlpPlacer {
    /// Solve the placement exactly (or best-effort within budget).
    pub fn place(
        &self,
        app: &AppProfile,
        machines: &Machines,
        snapshot: &NetworkSnapshot,
        load: &NetworkLoad,
    ) -> Result<IlpPlacerOutcome, PlaceError> {
        let j_tasks = app.n_tasks();
        let m_vms = machines.len();
        assert_eq!(snapshot.n_vms(), m_vms);

        // Pair bookkeeping.
        let all_pairs: Vec<(usize, usize)> =
            (0..j_tasks).flat_map(|i| ((i + 1)..j_tasks).map(move |j| (i, j))).collect();
        let pairs: Vec<(usize, usize)> = match self.formulation {
            Formulation::Paper => all_pairs.clone(),
            Formulation::Sparse => all_pairs
                .iter()
                .copied()
                .filter(|&(i, j)| app.matrix.bytes(i, j) > 0 || app.matrix.bytes(j, i) > 0)
                .collect(),
        };
        let x_idx = |i: usize, m: usize| i * m_vms + m;
        let z_base = j_tasks * m_vms;
        let z_idx = |p: usize, m: usize, n: usize| z_base + p * m_vms * m_vms + m * m_vms + n;
        let z_scalar = z_base + pairs.len() * m_vms * m_vms;
        let n_vars = z_scalar + 1;

        let mut lp = Lp::new(n_vars);
        lp.set_objective(z_scalar, 1.0);
        for v in 0..z_scalar {
            lp.set_bounds(v, 0.0, 1.0);
        }
        // z scalar: [0, ∞).

        // (3) each task on exactly one machine.
        for i in 0..j_tasks {
            let coeffs: Vec<(usize, f64)> = (0..m_vms).map(|m| (x_idx(i, m), 1.0)).collect();
            lp.add_constraint(coeffs, Relation::Eq, 1.0);
        }
        // (2) CPU limits, net of existing load.
        for m in 0..m_vms {
            let coeffs: Vec<(usize, f64)> =
                (0..j_tasks).map(|i| (x_idx(i, m), app.cpu[i])).collect();
            let cap = (machines.cpu[m] - load.cpu_used[m]).max(0.0);
            lp.add_constraint(coeffs, Relation::Le, cap);
        }
        // (4)(+5 / ≥-link) product linearization.
        for (p, &(i, j)) in pairs.iter().enumerate() {
            for m in 0..m_vms {
                for n in 0..m_vms {
                    let zv = z_idx(p, m, n);
                    lp.add_constraint(vec![(zv, 1.0), (x_idx(i, m), -1.0)], Relation::Le, 0.0);
                    lp.add_constraint(vec![(zv, 1.0), (x_idx(j, n), -1.0)], Relation::Le, 0.0);
                    if self.formulation == Formulation::Sparse {
                        // z ≥ X_im + X_jn − 1.
                        lp.add_constraint(
                            vec![(zv, 1.0), (x_idx(i, m), -1.0), (x_idx(j, n), -1.0)],
                            Relation::Ge,
                            -1.0,
                        );
                    }
                }
            }
        }
        if self.formulation == Formulation::Paper {
            // (5) per-task sum equals J−1: forces every product up.
            for i in 0..j_tasks {
                let mut coeffs = Vec::new();
                for (p, &(a, b)) in pairs.iter().enumerate() {
                    if a == i || b == i {
                        for m in 0..m_vms {
                            for n in 0..m_vms {
                                coeffs.push((z_idx(p, m, n), 1.0));
                            }
                        }
                    }
                }
                lp.add_constraint(coeffs, Relation::Eq, (j_tasks - 1) as f64);
            }
        }
        // (1) completion-time constraints.
        match snapshot.model {
            RateModel::Pipe => {
                for m in 0..m_vms {
                    for n in 0..m_vms {
                        if m == n {
                            continue;
                        }
                        let rate = snapshot.rate(VmId(m as u32), VmId(n as u32));
                        let mut coeffs = vec![(z_scalar, 1.0)];
                        for (p, &(i, j)) in pairs.iter().enumerate() {
                            let fwd = app.matrix.bytes(i, j) as f64 * 8.0 / rate;
                            if fwd > 0.0 {
                                coeffs.push((z_idx(p, m, n), -fwd));
                            }
                            let rev = app.matrix.bytes(j, i) as f64 * 8.0 / rate;
                            if rev > 0.0 {
                                coeffs.push((z_idx(p, n, m), -rev));
                            }
                        }
                        if coeffs.len() > 1 {
                            lp.add_constraint(coeffs, Relation::Ge, 0.0);
                        }
                    }
                }
            }
            RateModel::Hose => {
                for m in 0..m_vms {
                    let hose = snapshot.hose_rate(VmId(m as u32));
                    let mut coeffs = vec![(z_scalar, 1.0)];
                    for n in 0..m_vms {
                        if m == n {
                            continue;
                        }
                        for (p, &(i, j)) in pairs.iter().enumerate() {
                            let fwd = app.matrix.bytes(i, j) as f64 * 8.0 / hose;
                            if fwd > 0.0 {
                                coeffs.push((z_idx(p, m, n), -fwd));
                            }
                            let rev = app.matrix.bytes(j, i) as f64 * 8.0 / hose;
                            if rev > 0.0 {
                                coeffs.push((z_idx(p, n, m), -rev));
                            }
                        }
                    }
                    if coeffs.len() > 1 {
                        lp.add_constraint(coeffs, Relation::Ge, 0.0);
                    }
                }
            }
        }

        let integer_vars: Vec<usize> =
            (0..j_tasks).flat_map(|i| (0..m_vms).map(move |m| x_idx(i, m))).collect();

        // Warm start: the greedy heuristic's completion time is a valid
        // upper bound, letting branch-and-bound prune everything that
        // cannot beat it (the paper's observation that greedy is
        // near-optimal makes this cutoff very tight in practice).
        let warm = crate::greedy::GreedyPlacer.place(app, machines, snapshot, load).ok();
        let warm_obj =
            warm.as_ref().map(|p| crate::predict::predict_completion_secs(app, p, snapshot));
        let mut config = self.config;
        config.initial_upper_bound = warm_obj;

        let outcome = solve_ilp(&lp, &integer_vars, &config);
        let (sol_placement, objective, proven) = match outcome {
            IlpOutcome::Optimal(s) => (Self::extract(&s.x, j_tasks, m_vms), s.objective, true),
            IlpOutcome::Feasible(s) => {
                // Budget ran out with an incumbent better than the cutoff.
                (Self::extract(&s.x, j_tasks, m_vms), s.objective, false)
            }
            IlpOutcome::Infeasible => match (warm, warm_obj) {
                // The search exhausted the tree without beating the greedy
                // cutoff: greedy was optimal (within tolerance).
                (Some(p), Some(obj)) => (p, obj, true),
                _ => return Err(PlaceError::InsufficientCpu),
            },
            IlpOutcome::Unknown => match (warm, warm_obj) {
                (Some(p), Some(obj)) => (p, obj, false),
                _ => return Err(PlaceError::NoFeasibleMachine { task: 0 }),
            },
            IlpOutcome::Unbounded => return Err(PlaceError::NoFeasibleMachine { task: 0 }),
        };
        Ok(IlpPlacerOutcome {
            placement: sol_placement,
            objective_secs: objective,
            proven_optimal: proven,
        })
    }

    /// Round the relaxation's `X` block into an assignment.
    fn extract(x: &[f64], j_tasks: usize, m_vms: usize) -> Placement {
        let mut assignment = Vec::with_capacity(j_tasks);
        for i in 0..j_tasks {
            let m = (0..m_vms)
                .max_by(|&a, &b| x[i * m_vms + a].partial_cmp(&x[i * m_vms + b]).expect("no NaN"))
                .expect("at least one machine");
            assignment.push(m as u32);
        }
        Placement { assignment }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPlacer;
    use crate::predict::predict_completion_secs;
    use crate::problem::validate;
    use choreo_profile::TrafficMatrix;

    fn snap(n: usize, entries: &[(usize, usize, f64)], model: RateModel) -> NetworkSnapshot {
        let mut rates = vec![1.0; n * n];
        for &(a, b, r) in entries {
            rates[a * n + b] = r;
        }
        NetworkSnapshot::from_rates(n, rates, model)
    }

    #[test]
    fn trivial_two_task_app_colocates() {
        // Two tasks exchanging data, roomy machines: optimum co-locates
        // them (objective 0).
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 1000);
        let app = AppProfile::new("t", vec![1.0, 1.0], m, 0);
        let machines = Machines::uniform(2, 4.0);
        let s = snap(2, &[], RateModel::Pipe);
        let out =
            IlpPlacer::default().place(&app, &machines, &s, &NetworkLoad::new(2)).expect("solved");
        assert!(out.proven_optimal);
        assert_eq!(out.placement.assignment[0], out.placement.assignment[1]);
        assert!(out.objective_secs.abs() < 1e-6);
    }

    #[test]
    fn picks_fast_path_when_split_is_forced() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 100);
        let app = AppProfile::new("t", vec![1.0, 1.0], m, 0);
        let machines = Machines::uniform(3, 1.0); // forces distinct machines
        let s = snap(
            3,
            &[(0, 1, 2.0), (1, 0, 2.0), (0, 2, 16.0), (2, 0, 16.0), (1, 2, 4.0), (2, 1, 4.0)],
            RateModel::Pipe,
        );
        let out =
            IlpPlacer::default().place(&app, &machines, &s, &NetworkLoad::new(3)).expect("solved");
        assert!(out.proven_optimal);
        // Fastest directed paths are 0->2 and 2->0 at rate 16:
        // 100*8/16 = 50 s. Either orientation is optimal.
        assert!(
            out.placement.assignment == vec![0, 2] || out.placement.assignment == vec![2, 0],
            "{:?}",
            out.placement.assignment
        );
        assert!((out.objective_secs - 50.0).abs() < 1e-6);
        let pred = predict_completion_secs(&app, &out.placement, &s);
        assert!((pred - out.objective_secs).abs() < 1e-6, "ILP and predictor agree");
    }

    #[test]
    fn paper_and_sparse_formulations_agree() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 60);
        m.set(1, 2, 40);
        let app = AppProfile::new("t", vec![1.0; 3], m, 0);
        let machines = Machines::uniform(3, 1.0);
        let s = snap(
            3,
            &[(0, 1, 8.0), (1, 0, 8.0), (0, 2, 2.0), (2, 0, 2.0), (1, 2, 4.0), (2, 1, 4.0)],
            RateModel::Pipe,
        );
        let sparse = IlpPlacer { formulation: Formulation::Sparse, ..Default::default() }
            .place(&app, &machines, &s, &NetworkLoad::new(3))
            .expect("sparse solved");
        let paper = IlpPlacer { formulation: Formulation::Paper, ..Default::default() }
            .place(&app, &machines, &s, &NetworkLoad::new(3))
            .expect("paper solved");
        assert!(sparse.proven_optimal && paper.proven_optimal);
        assert!(
            (sparse.objective_secs - paper.objective_secs).abs() < 1e-6,
            "{} vs {}",
            sparse.objective_secs,
            paper.objective_secs
        );
    }

    #[test]
    fn ilp_beats_greedy_on_fig9_instance() {
        let mut m = TrafficMatrix::zeros(4);
        m.set(0, 1, 100);
        m.set(0, 2, 50);
        m.set(1, 3, 50);
        let app = AppProfile::new("fig9", vec![1.0; 4], m, 0);
        let s = snap(
            4,
            &[
                (0, 1, 10.0),
                (2, 3, 9.0),
                (2, 0, 8.0),
                (2, 1, 8.0),
                (3, 0, 8.0),
                (3, 1, 8.0),
                (0, 2, 4.0),
                (0, 3, 4.0),
                (1, 2, 4.0),
                (1, 3, 4.0),
                (1, 0, 4.0),
                (3, 2, 4.0),
            ],
            RateModel::Pipe,
        );
        let machines = Machines::uniform(4, 1.0);
        let load = NetworkLoad::new(4);
        let greedy = GreedyPlacer.place(&app, &machines, &s, &load).unwrap();
        let greedy_time = predict_completion_secs(&app, &greedy, &s);
        let exact = IlpPlacer::default().place(&app, &machines, &s, &load).expect("solved");
        assert!(validate(&app, &machines, &exact.placement).is_ok());
        assert!(
            exact.objective_secs < greedy_time - 1e-9,
            "ILP {} should beat greedy {greedy_time}",
            exact.objective_secs
        );
    }

    #[test]
    fn hose_model_objective_counts_egress() {
        // One source fanning out to two sinks; hose model must sum both.
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 50);
        m.set(0, 2, 50);
        let app = AppProfile::new("fan", vec![1.0; 3], m, 0);
        let machines = Machines::uniform(3, 1.0);
        let s = snap(3, &[], RateModel::Hose); // all hoses rate 1
        let out =
            IlpPlacer::default().place(&app, &machines, &s, &NetworkLoad::new(3)).expect("solved");
        // 100 bytes * 8 / 1 = 800 s whatever the (forced distinct) layout.
        assert!((out.objective_secs - 800.0).abs() < 1e-6, "{}", out.objective_secs);
    }

    #[test]
    fn infeasible_cpu_is_reported() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 10);
        let app = AppProfile::new("t", vec![3.0, 3.0], m, 0);
        let machines = Machines::uniform(2, 2.0);
        let s = snap(2, &[], RateModel::Pipe);
        let err =
            IlpPlacer::default().place(&app, &machines, &s, &NetworkLoad::new(2)).unwrap_err();
        assert_eq!(err, PlaceError::InsufficientCpu);
    }

    #[test]
    fn existing_cpu_load_shrinks_capacity() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 10);
        let app = AppProfile::new("t", vec![1.0, 1.0], m, 0);
        let machines = Machines::uniform(2, 2.0);
        let s = snap(2, &[(0, 1, 4.0), (1, 0, 4.0)], RateModel::Pipe);
        let mut load = NetworkLoad::new(2);
        load.cpu_used = vec![1.5, 0.0];
        let out = IlpPlacer::default().place(&app, &machines, &s, &load).expect("solved");
        // Machine 0 has only 0.5 cores free: both tasks must use machine 1
        // — and co-locating them there zeroes the objective.
        assert_eq!(out.placement.assignment, vec![1, 1]);
    }
}
