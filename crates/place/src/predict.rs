//! Closed-form completion-time prediction.
//!
//! The Appendix defines an application's completion time under a placement
//! as the time of its longest-running bottleneck: group the placed
//! transfers by the resource they share (the ordered VM pair under the
//! pipe model, the source VM's hose under the hose model), sum the bytes
//! on each resource, divide by the resource's rate, and take the maximum.
//! Same-VM transfers cost nothing. This is the objective both the greedy
//! heuristic and the ILP minimize.

use choreo_measure::{NetworkSnapshot, RateModel};
use choreo_profile::AppProfile;
use choreo_topology::VmId;

use crate::problem::Placement;

/// Predicted completion time in seconds (0 when everything co-locates).
pub fn predict_completion_secs(
    app: &AppProfile,
    placement: &Placement,
    snapshot: &NetworkSnapshot,
) -> f64 {
    let n_vms = snapshot.n_vms();
    match snapshot.model {
        RateModel::Pipe => {
            let mut bytes = vec![0u64; n_vms * n_vms];
            for (i, j, b) in app.matrix.transfers_desc() {
                let (m, n) = (placement.assignment[i] as usize, placement.assignment[j] as usize);
                if m != n {
                    bytes[m * n_vms + n] += b;
                }
            }
            let mut worst = 0.0f64;
            for m in 0..n_vms {
                for n in 0..n_vms {
                    let b = bytes[m * n_vms + n];
                    if b > 0 {
                        let t = b as f64 * 8.0 / snapshot.rate(VmId(m as u32), VmId(n as u32));
                        worst = worst.max(t);
                    }
                }
            }
            worst
        }
        RateModel::Hose => {
            let mut egress = vec![0u64; n_vms];
            for (i, j, b) in app.matrix.transfers_desc() {
                let (m, n) = (placement.assignment[i] as usize, placement.assignment[j] as usize);
                if m != n {
                    egress[m] += b;
                }
            }
            let mut worst = 0.0f64;
            for (m, &eg) in egress.iter().enumerate() {
                if eg > 0 {
                    let t = eg as f64 * 8.0 / snapshot.hose_rate(VmId(m as u32));
                    worst = worst.max(t);
                }
            }
            worst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choreo_profile::TrafficMatrix;

    fn snap(n: usize, entries: &[(usize, usize, f64)], model: RateModel) -> NetworkSnapshot {
        let mut rates = vec![1.0; n * n];
        for &(a, b, r) in entries {
            rates[a * n + b] = r;
        }
        NetworkSnapshot::from_rates(n, rates, model)
    }

    #[test]
    fn pipe_model_sums_per_path() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 100); // task 0 -> task 1
        m.set(2, 1, 100); // task 2 -> task 1
        let app = AppProfile::new("t", vec![1.0; 3], m, 0);
        // tasks 0 and 2 both on VM 0; task 1 on VM 1: 200 bytes on (0,1).
        let p = Placement { assignment: vec![0, 1, 0] };
        let s = snap(2, &[(0, 1, 16.0), (1, 0, 16.0)], RateModel::Pipe);
        // 200 bytes * 8 / 16 = 100 s.
        assert!((predict_completion_secs(&app, &p, &s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hose_model_sums_per_source() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 100);
        m.set(0, 2, 100);
        let app = AppProfile::new("t", vec![1.0; 3], m, 0);
        let p = Placement { assignment: vec![0, 1, 2] };
        // Hose of VM 0 = max over destinations = 16.
        let s = snap(
            3,
            &[(0, 1, 16.0), (0, 2, 16.0), (1, 0, 16.0), (2, 0, 16.0), (1, 2, 16.0), (2, 1, 16.0)],
            RateModel::Hose,
        );
        // All 200 bytes leave VM 0: 200*8/16 = 100 s.
        assert!((predict_completion_secs(&app, &p, &s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_transfers_are_free() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 1_000_000);
        let app = AppProfile::new("t", vec![1.0; 2], m, 0);
        let p = Placement { assignment: vec![1, 1] };
        let s = snap(2, &[], RateModel::Pipe);
        assert_eq!(predict_completion_secs(&app, &p, &s), 0.0);
    }

    #[test]
    fn hose_beats_pipe_when_source_is_shared() {
        // Two transfers out of one VM to different destinations: the pipe
        // model sees two independent paths; the hose model serializes them.
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 100);
        m.set(0, 2, 100);
        let app = AppProfile::new("t", vec![1.0; 3], m, 0);
        let p = Placement { assignment: vec![0, 1, 2] };
        let pipe = snap(3, &[], RateModel::Pipe); // all rates 1
        let hose = snap(3, &[], RateModel::Hose);
        let t_pipe = predict_completion_secs(&app, &p, &pipe);
        let t_hose = predict_completion_secs(&app, &p, &hose);
        assert!((t_pipe - 800.0).abs() < 1e-9, "per-path: 100*8/1");
        assert!((t_hose - 1600.0).abs() < 1e-9, "hose serializes: 200*8/1");
    }
}
