//! Algorithm 1: greedy network-aware placement.
//!
//! Walk the application's transfers in descending byte order. For each
//! transfer `⟨i, j, b⟩`, enumerate the candidate VM pairs consistent with
//! any placements already made (lines 3–8 of the paper's listing), discard
//! pairs that violate CPU constraints (lines 10–11), estimate the rate the
//! transfer would see on each remaining pair — sharing with transfers
//! already placed under the hose or pipe model (line 13) — and take the
//! fastest (line 14). Intra-machine "paths" have effectively infinite
//! rate, so heavy pairs co-locate when CPU allows, exactly the behaviour
//! §9 describes.
//!
//! # Batched candidate evaluation
//!
//! Raw inter-VM rates come from a [`CandidateRater`], queried **one batch
//! per transfer** rather than one call per `(m, n)` pair: the feasible
//! candidates are enumerated, filtered through the per-pair `RateCache`
//! (a pair is never rated twice in one placement), and the misses go to
//! the rater as a single `path_rates` batch. Against a snapshot that is a
//! memory walk; against a live backend (see
//! [`crate::rater::BackendRater`]) it collapses `O(V²)` what-if solver
//! passes per transfer into one. The sharing adjustment for transfers
//! placed earlier in the same call is pure arithmetic applied on top, so
//! cached raw rates never go stale.
//!
//! Committing the placement completes the warm chain: rating candidates
//! against a live flow cloud leaves the engine's solver holding the
//! freeze-round log of the committed allocation, so when the placed
//! transfers start, the engine's next reallocation warm-starts from that
//! probe-era log (`MaxMinSolver::solve_warm` in `choreo-flowsim`) instead
//! of cold-solving.

use choreo_measure::{NetworkSnapshot, RateModel};
use choreo_profile::AppProfile;
use choreo_topology::VmId;

use crate::problem::{Machines, NetworkLoad, PlaceError, Placement};
use crate::rater::{CandidateRater, SnapshotRater};

/// The greedy network-aware placer.
#[derive(Debug, Clone, Default)]
pub struct GreedyPlacer;

/// Memo of raw per-VM-pair rates for one `place()` call.
///
/// Candidate enumeration visits the same `(m, n)` pair `O(V²)` times per
/// transfer; the cache guarantees each pair is rated by the
/// [`CandidateRater`] at most once per placement and acts as the filter in
/// front of the per-transfer batch. Raw rates are placement-independent
/// (the sharing adjustment happens outside), so entries never invalidate.
/// `NaN` marks pairs not yet rated.
#[derive(Debug)]
struct RateCache {
    vals: Vec<f64>,
    n_vms: usize,
}

impl RateCache {
    fn new(n_vms: usize) -> RateCache {
        RateCache { vals: vec![f64::NAN; n_vms * n_vms], n_vms }
    }

    #[inline]
    fn get(&self, m: u32, n: u32) -> Option<f64> {
        let v = self.vals[m as usize * self.n_vms + n as usize];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    #[inline]
    fn put(&mut self, m: u32, n: u32, rate: f64) {
        self.vals[m as usize * self.n_vms + n as usize] = rate;
    }
}

/// Reusable buffers for one transfer's candidate batch.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Feasible candidate pairs, in enumeration order (the tie-break
    /// order).
    cands: Vec<(u32, u32)>,
    /// Cache misses submitted to the rater.
    misses: Vec<(u32, u32)>,
    /// Rater output, parallel to `misses`.
    rates: Vec<f64>,
}

/// Working state of one `place_with_rater` call: the placement inputs
/// plus everything the greedy walk mutates as transfers are placed. One
/// struct instead of a dozen loose parameters threading through
/// `best_pair`.
struct PlaceCtx<'a, R: CandidateRater> {
    app: &'a AppProfile,
    machines: &'a Machines,
    rater: &'a mut R,
    load: &'a NetworkLoad,
    /// Task → VM decided so far.
    assignment: Vec<Option<u32>>,
    /// Per-VM CPU committed (pre-existing load + this placement).
    cpu_used: Vec<f64>,
    /// Transfers placed *by this call* per directed VM pair.
    placed_path: Vec<u32>,
    /// Transfers placed *by this call* per source VM.
    placed_egress: Vec<u32>,
    /// Raw-rate memo (one rater query per pair, ever).
    cache: RateCache,
    /// Per-transfer candidate batch buffers.
    scratch: BatchScratch,
}

impl<R: CandidateRater> PlaceCtx<'_, R> {
    /// Account a placed transfer on its path for the sharing model.
    fn account(&mut self, m: u32, n: u32) {
        if m != n {
            let n_vms = self.machines.len();
            self.placed_path[m as usize * n_vms + n as usize] += 1;
            self.placed_egress[m as usize] += 1;
        }
    }

    /// Sharing-adjusted rate a *new* transfer would see on `(m, n)` (line
    /// 13 of Algorithm 1): the raw path rate divided among the
    /// connections it shares with, under the rater's sharing model.
    /// `raw_path` comes from the [`CandidateRater`] via the cache; the
    /// hose rate is fetched (memoized) from the rater when needed.
    fn shared_rate(&mut self, model: RateModel, m: u32, n: u32, raw_path: f64) -> f64 {
        let n_vms = self.machines.len();
        let (a, b) = (VmId(m), VmId(n));
        match model {
            RateModel::Pipe => {
                let sharing =
                    1 + self.load.on_path(a, b) + self.placed_path[m as usize * n_vms + n as usize];
                raw_path / sharing as f64
            }
            RateModel::Hose => {
                let raw_hose = self.rater.hose_rate(m);
                let sharing = 1 + self.load.egress(a) + self.placed_egress[m as usize];
                let hose_share = raw_hose / sharing as f64;
                // A path cannot beat its own measured rate even if the
                // hose has spare capacity.
                hose_share.min(raw_path)
            }
        }
    }

    /// Candidate enumeration per Algorithm 1 lines 3–11, then rate
    /// maximization (line 14). Deterministic tie-break on (rate, m, n).
    ///
    /// Runs in three phases: enumerate the feasible candidates, submit the
    /// cache misses to the rater as **one batch for the whole transfer**,
    /// then apply the sharing adjustment and maximize. The cache
    /// guarantees no pair is ever rated twice within one placement.
    fn best_pair(&mut self, i: usize, j: usize) -> Result<(u32, u32), PlaceError> {
        let n_vms = self.machines.len() as u32;
        // Phase 1: feasible candidates, in deterministic tie-break order.
        {
            let PlaceCtx { app, machines, assignment, cpu_used, scratch, .. } = self;
            let fits = |task: usize, vm: u32, extra: f64| {
                cpu_used[vm as usize] + extra + app.cpu[task] <= machines.cpu[vm as usize] + 1e-9
            };
            scratch.cands.clear();
            match (assignment[i], assignment[j]) {
                (Some(k), None) => {
                    for n in 0..n_vms {
                        if fits(j, n, 0.0) {
                            scratch.cands.push((k, n));
                        }
                    }
                }
                (None, Some(l)) => {
                    for m in 0..n_vms {
                        if fits(i, m, 0.0) {
                            scratch.cands.push((m, l));
                        }
                    }
                }
                (None, None) => {
                    for m in 0..n_vms {
                        if !fits(i, m, 0.0) {
                            continue;
                        }
                        for n in 0..n_vms {
                            let ok = if m == n {
                                fits(j, n, app.cpu[i]) // both tasks land together
                            } else {
                                fits(j, n, 0.0)
                            };
                            if ok {
                                scratch.cands.push((m, n));
                            }
                        }
                    }
                }
                (Some(m), Some(n)) => return Ok((m, n)),
            }
        }
        // Phase 2: the cache filters the batch — only never-rated pairs
        // reach the rater, as one call for the whole transfer.
        {
            let PlaceCtx { rater, cache, scratch, .. } = self;
            scratch.misses.clear();
            for &(m, n) in &scratch.cands {
                if m != n && cache.get(m, n).is_none() {
                    scratch.misses.push((m, n));
                }
            }
            if !scratch.misses.is_empty() {
                rater.path_rates(&scratch.misses, &mut scratch.rates);
                assert_eq!(scratch.rates.len(), scratch.misses.len(), "rater rated every pair");
                for (&(m, n), &r) in scratch.misses.iter().zip(&scratch.rates) {
                    cache.put(m, n, r);
                }
            }
        }
        // Phase 3: sharing adjustment + maximization.
        let model = self.rater.model();
        let mut best: Option<(f64, u32, u32)> = None;
        for idx in 0..self.scratch.cands.len() {
            let (m, n) = self.scratch.cands[idx];
            let rate = if m == n {
                f64::INFINITY
            } else {
                let raw_path = self.cache.get(m, n).expect("batched above");
                self.shared_rate(model, m, n, raw_path)
            };
            let better = match best {
                None => true,
                Some((br, bm, bn)) => {
                    rate > br + 1e-12 || ((rate - br).abs() <= 1e-12 && (m, n) < (bm, bn))
                }
            };
            if better {
                best = Some((rate, m, n));
            }
        }
        best.map(|(_, m, n)| (m, n)).ok_or(PlaceError::NoFeasibleMachine { task: i })
    }
}

impl GreedyPlacer {
    /// Place `app` on `machines` given the measured `snapshot`, starting
    /// from a network already carrying `load` (use
    /// [`NetworkLoad::new`] for an idle network).
    pub fn place(
        &self,
        app: &AppProfile,
        machines: &Machines,
        snapshot: &NetworkSnapshot,
        load: &NetworkLoad,
    ) -> Result<Placement, PlaceError> {
        assert_eq!(snapshot.n_vms(), machines.len(), "snapshot covers the machines");
        self.place_with_rater(app, machines, &mut SnapshotRater { snapshot }, load)
    }

    /// [`GreedyPlacer::place`] over any [`CandidateRater`] — e.g. a
    /// [`crate::rater::BackendRater`] that scores each transfer's
    /// candidate set against the live network in one batched what-if
    /// round-trip.
    pub fn place_with_rater<R: CandidateRater>(
        &self,
        app: &AppProfile,
        machines: &Machines,
        rater: &mut R,
        load: &NetworkLoad,
    ) -> Result<Placement, PlaceError> {
        let n_tasks = app.n_tasks();
        let n_vms = machines.len();
        assert_eq!(rater.n_vms(), n_vms, "rater covers the machines");
        assert_eq!(load.n_vms(), n_vms, "load covers the machines");
        let total_cpu: f64 = app.cpu.iter().sum();
        let free_cpu: f64 =
            machines.cpu.iter().zip(&load.cpu_used).map(|(cap, used)| (cap - used).max(0.0)).sum();
        if total_cpu > free_cpu + 1e-9 {
            return Err(PlaceError::InsufficientCpu);
        }

        let mut ctx = PlaceCtx {
            app,
            machines,
            rater,
            load,
            assignment: vec![None; n_tasks],
            cpu_used: load.cpu_used.clone(),
            placed_path: vec![0u32; n_vms * n_vms],
            placed_egress: vec![0u32; n_vms],
            cache: RateCache::new(n_vms),
            scratch: BatchScratch::default(),
        };

        let transfers = app.matrix.transfers_desc();
        for (i, j, _bytes) in &transfers {
            let (i, j) = (*i, *j);
            match (ctx.assignment[i], ctx.assignment[j]) {
                (Some(m), Some(n)) => {
                    // Both fixed: just account the transfer on its path.
                    ctx.account(m, n);
                }
                _ => {
                    let (m, n) = ctx.best_pair(i, j)?;
                    if ctx.assignment[i].is_none() {
                        ctx.assignment[i] = Some(m);
                        ctx.cpu_used[m as usize] += app.cpu[i];
                    }
                    if ctx.assignment[j].is_none() {
                        ctx.assignment[j] = Some(n);
                        ctx.cpu_used[n as usize] += app.cpu[j];
                    }
                    ctx.account(m, n);
                }
            }
        }

        // Tasks with no transfers: first-fit by CPU.
        for (t, slot) in ctx.assignment.iter_mut().enumerate() {
            if slot.is_none() {
                let vm = (0..n_vms)
                    .find(|&m| ctx.cpu_used[m] + app.cpu[t] <= machines.cpu[m] + 1e-9)
                    .ok_or(PlaceError::NoFeasibleMachine { task: t })?;
                *slot = Some(vm as u32);
                ctx.cpu_used[vm] += app.cpu[t];
            }
        }
        Ok(Placement {
            assignment: ctx.assignment.into_iter().map(|a| a.expect("placed")).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict_completion_secs;
    use choreo_profile::TrafficMatrix;

    /// Snapshot from a dense directed rate list (units arbitrary).
    fn snap(n: usize, entries: &[(usize, usize, f64)], model: RateModel) -> NetworkSnapshot {
        let mut rates = vec![1.0; n * n];
        for &(a, b, r) in entries {
            rates[a * n + b] = r;
        }
        NetworkSnapshot::from_rates(n, rates, model)
    }

    fn one_core_each(n: usize) -> Machines {
        Machines::uniform(n, 1.0)
    }

    #[test]
    fn heaviest_transfer_gets_fastest_path() {
        // 3 tasks, 3 machines, star traffic: S->A heavy, S->B light.
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 1000);
        m.set(0, 2, 10);
        let app = AppProfile::new("star", vec![1.0; 3], m, 0);
        // Path 0->1 fast (100), 0->2 slow (10), 1->2 medium.
        let s = snap(
            3,
            &[(0, 1, 100.0), (1, 0, 100.0), (0, 2, 10.0), (2, 0, 10.0), (1, 2, 50.0), (2, 1, 50.0)],
            RateModel::Pipe,
        );
        let p = GreedyPlacer
            .place(&app, &one_core_each(3), &s, &NetworkLoad::new(3))
            .expect("feasible");
        // The heavy pair (0,1) must land on the 100-rate pair (0,1).
        let (a, b) = (p.assignment[0], p.assignment[1]);
        assert_eq!((a, b), (0, 1), "heavy transfer on the fast path: {:?}", p.assignment);
    }

    #[test]
    fn colocates_heavy_pairs_when_cpu_allows() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 1_000_000);
        let app = AppProfile::new("pair", vec![1.0, 1.0], m, 0);
        let s = snap(2, &[(0, 1, 5.0), (1, 0, 5.0)], RateModel::Pipe);
        // Two 4-core machines: both tasks fit on one.
        let p = GreedyPlacer
            .place(&app, &Machines::uniform(2, 4.0), &s, &NetworkLoad::new(2))
            .expect("feasible");
        assert_eq!(p.assignment[0], p.assignment[1], "intra-machine rate is infinite");
    }

    #[test]
    fn cpu_constraints_force_spreading() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 1_000_000);
        let app = AppProfile::new("pair", vec![1.0, 1.0], m, 0);
        let s = snap(2, &[(0, 1, 5.0), (1, 0, 5.0)], RateModel::Pipe);
        let p = GreedyPlacer
            .place(&app, &one_core_each(2), &s, &NetworkLoad::new(2))
            .expect("feasible");
        assert_ne!(p.assignment[0], p.assignment[1], "1-core machines cannot co-host");
    }

    #[test]
    fn respects_existing_network_load_under_hose() {
        // Two identical machines-pairs; existing load saturates VM 0's hose.
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 100);
        let app = AppProfile::new("x", vec![1.0, 1.0], m, 0);
        let s = snap(
            4,
            &[
                (0, 1, 10.0),
                (1, 0, 10.0),
                (2, 3, 10.0),
                (3, 2, 10.0),
                (0, 2, 10.0),
                (0, 3, 10.0),
                (1, 2, 10.0),
                (1, 3, 10.0),
                (2, 0, 10.0),
                (2, 1, 10.0),
                (3, 0, 10.0),
                (3, 1, 10.0),
            ],
            RateModel::Hose,
        );
        let mut load = NetworkLoad::new(4);
        // Three running transfers out of VM 0.
        let bg_m = TrafficMatrix::from_rows(
            4,
            vec![
                0, 1, 1, 1, //
                0, 0, 0, 0, //
                0, 0, 0, 0, //
                0, 0, 0, 0,
            ],
        );
        let bg = AppProfile::new("bg", vec![0.1; 4], bg_m, 0);
        load.apply(&bg, &Placement { assignment: vec![0, 1, 2, 3] });
        assert_eq!(load.egress(VmId(0)), 3);
        let p = GreedyPlacer.place(&app, &Machines::uniform(4, 2.0), &s, &load).expect("feasible");
        // The fresh transfer avoids VM 0 as its source.
        assert_ne!(p.assignment[0], 0, "avoids the loaded hose: {:?}", p.assignment);
    }

    #[test]
    fn fig9_style_greedy_is_suboptimal_but_valid() {
        // Reproduction of the paper's Fig. 9 structure: the greedy placer
        // grabs the rate-10 path for the 100-unit transfer and strands the
        // 50-unit transfers on rate-4 paths; placing the big transfer on
        // the rate-9 pair (2,3) would have been better overall.
        let mut m = TrafficMatrix::zeros(4);
        m.set(0, 1, 100); // J1 -> J2
        m.set(0, 2, 50); // J1 -> J3
        m.set(1, 3, 50); // J2 -> J4
        let app = AppProfile::new("fig9", vec![1.0; 4], m, 0);
        let s = snap(
            4,
            &[
                (0, 1, 10.0),
                (2, 3, 9.0),
                (2, 0, 8.0),
                (2, 1, 8.0),
                (3, 0, 8.0),
                (3, 1, 8.0),
                (0, 2, 4.0),
                (0, 3, 4.0),
                (1, 2, 4.0),
                (1, 3, 4.0),
                (1, 0, 4.0),
                (3, 2, 4.0),
            ],
            RateModel::Pipe,
        );
        let machines = one_core_each(4);
        let p = GreedyPlacer.place(&app, &machines, &s, &NetworkLoad::new(4)).expect("feasible");
        assert!(crate::problem::validate(&app, &machines, &p).is_ok());
        // Greedy takes (0,1) for the heavy transfer...
        assert_eq!((p.assignment[0], p.assignment[1]), (0, 1));
        let greedy_time = predict_completion_secs(&app, &p, &s);
        // ... but the J1@2, J2@3, J3@0, J4@1 placement is faster.
        let better = Placement { assignment: vec![2, 3, 0, 1] };
        let better_time = predict_completion_secs(&app, &better, &s);
        assert!(
            better_time < greedy_time,
            "greedy {greedy_time} should exceed optimal-ish {better_time}"
        );
    }

    #[test]
    fn infeasible_cpu_reports_error() {
        let mut m = TrafficMatrix::zeros(2);
        m.set(0, 1, 10);
        let app = AppProfile::new("big", vec![3.0, 3.0], m, 0);
        let s = snap(2, &[(0, 1, 1.0), (1, 0, 1.0)], RateModel::Pipe);
        let err =
            GreedyPlacer.place(&app, &one_core_each(2), &s, &NetworkLoad::new(2)).unwrap_err();
        assert_eq!(err, PlaceError::InsufficientCpu);
    }

    #[test]
    fn isolated_tasks_first_fit() {
        // No transfers at all: every task still gets a machine.
        let app = AppProfile::new("quiet", vec![1.0; 3], TrafficMatrix::zeros(3), 0);
        let s = snap(3, &[], RateModel::Pipe);
        let machines = Machines::uniform(3, 2.0);
        let p = GreedyPlacer.place(&app, &machines, &s, &NetworkLoad::new(3)).expect("ok");
        assert!(crate::problem::validate(&app, &machines, &p).is_ok());
    }

    #[test]
    fn deterministic_output() {
        let mut m = TrafficMatrix::zeros(4);
        m.set(0, 1, 100);
        m.set(2, 3, 100);
        let app = AppProfile::new("sym", vec![1.0; 4], m, 0);
        let s = snap(4, &[], RateModel::Pipe); // all rates equal
        let p1 = GreedyPlacer.place(&app, &one_core_each(4), &s, &NetworkLoad::new(4)).unwrap();
        let p2 = GreedyPlacer.place(&app, &one_core_each(4), &s, &NetworkLoad::new(4)).unwrap();
        assert_eq!(p1, p2);
    }
}
