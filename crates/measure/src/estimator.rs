//! Packet-train throughput estimation (paper §3.1).

use choreo_netsim::{BurstRecord, TrainConfig, TrainReport};
use choreo_topology::Nanos;

/// Mathis constant `C = √(3/2)` from Mathis et al., "The Macroscopic Behavior of the TCP
/// Congestion Avoidance Algorithm" (reference 23 of the paper).
pub const MATHIS_C: f64 = 1.224_744_871_391_589; // sqrt(1.5)

/// Outcome of estimating a path's TCP throughput from one packet train.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainEstimate {
    /// Final estimate: `min(burst_rate, mathis_cap)`, bits/s.
    pub throughput_bps: f64,
    /// Raw burst-timing estimate `P·Σnᵢ/Σtᵢ`, bits/s.
    pub burst_rate_bps: f64,
    /// Mathis bound `MSS·C/(RTT·√ℓ)`, bits/s (∞ when no loss).
    pub mathis_cap_bps: f64,
    /// Train-wide loss rate ℓ.
    pub loss_rate: f64,
    /// Bursts that contributed (≥ 2 packets received).
    pub usable_bursts: usize,
}

/// Adjusted receive span of one burst (paper: "we adjust tᵢ to take into
/// account what the time difference should have been", scaling by the
/// average per-packet time for packets missing from the head or tail).
fn adjusted_span(b: &BurstRecord, burst_len: u32) -> Option<Nanos> {
    if b.received < 2 {
        return None; // a single packet carries no rate information
    }
    let span = b.span();
    if span == 0 {
        return None;
    }
    let per_packet = span / (b.received as u64 - 1);
    let missing_head = b.min_idx as u64;
    let missing_tail = (burst_len - 1 - b.max_idx) as u64;
    Some(span + per_packet * (missing_head + missing_tail))
}

/// Estimate bulk TCP throughput from a train report.
pub fn estimate_from_report(report: &TrainReport) -> TrainEstimate {
    let p_bytes = report.config.packet_bytes as f64;
    let burst_len = report.config.burst_len;
    let mut sum_n = 0u64;
    let mut sum_t: u64 = 0;
    let mut usable = 0usize;
    for b in &report.bursts {
        if let Some(t) = adjusted_span(b, burst_len) {
            sum_n += b.received as u64;
            sum_t += t;
            usable += 1;
        }
    }
    let burst_rate =
        if sum_t > 0 { p_bytes * sum_n as f64 * 8.0 / (sum_t as f64 / 1e9) } else { 0.0 };
    let loss = report.loss_rate();
    let mathis = if loss > 0.0 && report.base_rtt > 0 {
        let rtt_s = report.base_rtt as f64 / 1e9;
        p_bytes * 8.0 * MATHIS_C / (rtt_s * loss.sqrt())
    } else {
        f64::INFINITY
    };
    TrainEstimate {
        throughput_bps: burst_rate.min(mathis),
        burst_rate_bps: burst_rate,
        mathis_cap_bps: mathis,
        loss_rate: loss,
        usable_bursts: usable,
    }
}

/// Wall-clock cost model for measuring a full mesh of `n_vms` (paper §4.1:
/// "To measure a network of ten VMs (i.e., 90 VM pairs) takes less than
/// three minutes ... including overhead"). A train's wire time is its
/// bursts' serialization at `line_rate_bps` plus the inter-burst gaps;
/// `per_pair_overhead` covers scheduling and report collection.
pub fn measurement_time(
    n_vms: usize,
    config: &TrainConfig,
    line_rate_bps: f64,
    per_pair_overhead: Nanos,
) -> Nanos {
    let pairs = (n_vms * n_vms.saturating_sub(1)) as u64;
    let burst_bytes = config.burst_len as u64 * config.packet_bytes as u64;
    let burst_time = choreo_topology::units::tx_time(burst_bytes, line_rate_bps) + config.gap;
    let train_time = burst_time * config.bursts as u64;
    pairs * (train_time + per_pair_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choreo_topology::{MILLIS, SECS};

    fn mk_report(bursts: Vec<BurstRecord>, sent: u64, base_rtt: Nanos) -> TrainReport {
        TrainReport {
            config: TrainConfig { packet_bytes: 1500, burst_len: 200, bursts: 10, gap: MILLIS },
            bursts,
            sent,
            base_rtt,
        }
    }

    fn full_burst(burst: u32, first: Nanos, rate_bps: f64) -> BurstRecord {
        // 200 packets at the given rate: 199 gaps of (1500*8/rate) secs.
        let gap = (1500.0 * 8.0 / rate_bps * 1e9) as Nanos;
        BurstRecord {
            burst,
            first_rx: first,
            last_rx: first + 199 * gap,
            received: 200,
            min_idx: 0,
            max_idx: 199,
        }
    }

    #[test]
    fn lossless_train_measures_burst_rate() {
        let bursts: Vec<BurstRecord> =
            (0..10).map(|i| full_burst(i, i as u64 * 10 * MILLIS, 1e9)).collect();
        let rep = mk_report(bursts, 2000, 100_000);
        let est = estimate_from_report(&rep);
        assert_eq!(est.loss_rate, 0.0);
        assert!(est.mathis_cap_bps.is_infinite());
        // 200/199 high bias ≈ 0.5% — the estimator follows the paper's
        // formula P·Σn/Σt.
        assert!((est.throughput_bps - 1.005e9).abs() < 0.01e9, "{}", est.throughput_bps);
        assert_eq!(est.usable_bursts, 10);
    }

    #[test]
    fn head_tail_loss_is_corrected() {
        // Burst missing its first 2 and last 3 packets: span covers 195
        // packets; adjustment stretches it as if all 200 were seen.
        let gap = (1500.0 * 8.0 / 1e9 * 1e9) as Nanos;
        let b = BurstRecord {
            burst: 0,
            first_rx: 0,
            last_rx: 194 * gap,
            received: 195,
            min_idx: 2,
            max_idx: 196,
        };
        let rep = mk_report(vec![b], 200, 100_000);
        let est = estimate_from_report(&rep);
        // Rate ≈ 195·P / (199 gaps) — within a few % of 1 Gbit/s, rather
        // than overestimating by treating the span as complete.
        assert!((est.burst_rate_bps - 0.985e9).abs() < 0.02e9, "{}", est.burst_rate_bps);
    }

    #[test]
    fn heavy_loss_engages_mathis_cap() {
        // 50% loss with spread-out arrivals: burst rate stays high but the
        // Mathis bound with a 10 ms RTT should cap the estimate.
        let gap = (1500.0 * 8.0 / 1e9 * 1e9) as Nanos;
        let bursts: Vec<BurstRecord> = (0..10)
            .map(|i| BurstRecord {
                burst: i,
                first_rx: i as u64 * 10 * MILLIS,
                last_rx: i as u64 * 10 * MILLIS + 99 * gap,
                received: 100,
                min_idx: 0,
                max_idx: 199,
            })
            .collect();
        let rep = mk_report(bursts, 2000, 10 * MILLIS);
        let est = estimate_from_report(&rep);
        assert!((est.loss_rate - 0.5).abs() < 1e-9);
        assert!(est.mathis_cap_bps.is_finite());
        // MSS·C/(RTT·√ℓ) = 1500·8·1.2247/(0.01·0.7071) ≈ 2.08 Mbit/s.
        assert!((est.mathis_cap_bps - 2.078e6).abs() < 0.01e6, "{}", est.mathis_cap_bps);
        assert_eq!(est.throughput_bps, est.mathis_cap_bps);
    }

    #[test]
    fn single_packet_bursts_are_unusable() {
        let b =
            BurstRecord { burst: 0, first_rx: 0, last_rx: 0, received: 1, min_idx: 7, max_idx: 7 };
        let rep = mk_report(vec![b], 200, 100_000);
        let est = estimate_from_report(&rep);
        assert_eq!(est.usable_bursts, 0);
        assert_eq!(est.burst_rate_bps, 0.0);
    }

    #[test]
    fn measurement_time_within_paper_budget() {
        // §4.1: 10 VMs with the EC2 config measure in < 3 minutes even
        // with 1 s per-pair overhead.
        let t = measurement_time(10, &TrainConfig::default(), 1e9, SECS);
        assert!(t < 3 * 60 * SECS, "t = {} s", t / SECS);
        // And an individual train costs well under a second of wire time.
        let per_train = measurement_time(2, &TrainConfig::default(), 1e9, 0) / 2;
        assert!(per_train < SECS, "per-train = {} ms", per_train / MILLIS);
    }
}
