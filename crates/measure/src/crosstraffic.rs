//! Cross-traffic estimation (paper §3.2).
//!
//! Send one bulk TCP connection on a path, sample its throughput every
//! 10 ms, and interpret each sample against the known maximum path rate:
//! if the path rate is `c₁` and our connection sees `c₂ ≤ c₁`, the load on
//! the bottleneck is equivalent to `c = c₁/c₂ − 1` backlogged TCP
//! connections. `c` measures *load*, not discrete connections (§3.2).

use choreo_topology::Nanos;

/// Point estimate `c = c₁/c₂ − 1` (clamped at 0 when the observation
/// exceeds the nominal path rate).
pub fn cross_traffic_estimate(observed_bps: f64, path_rate_bps: f64) -> f64 {
    assert!(path_rate_bps > 0.0, "path rate must be positive");
    if observed_bps <= 0.0 {
        return f64::INFINITY; // starved connection: unbounded load
    }
    (path_rate_bps / observed_bps - 1.0).max(0.0)
}

/// Convert a sampled throughput series (as produced by a 10 ms sampler on
/// the foreground connection) into a cross-traffic series.
pub fn cross_traffic_series(samples: &[(Nanos, f64)], path_rate_bps: f64) -> Vec<(Nanos, f64)> {
    samples.iter().map(|&(t, bps)| (t, cross_traffic_estimate(bps, path_rate_bps))).collect()
}

/// Estimate `c` *and* the unknown path rate from the two-step probe the
/// paper describes: measure one connection alone (`r1`), then per-connection
/// throughput with two concurrent connections (`r2_each`).
///
/// With `c` background connections on a path of rate `R`:
/// `r1 = R/(c+1)` and `r2_each = R/(c+2)`, so
/// `c = (2·r2 − r1)/(r1 − r2)` and `R = r1·(c+1)`.
///
/// Returns `None` when `r1 ≤ r2_each` (no congestion signal — the second
/// connection did not dent the first, so the bottleneck is elsewhere).
pub fn estimate_c_unknown_rate(r1: f64, r2_each: f64) -> Option<(f64, f64)> {
    if !(r1 > 0.0 && r2_each > 0.0) || r1 <= r2_each {
        return None;
    }
    let c = ((2.0 * r2_each - r1) / (r1 - r2_each)).max(0.0);
    let rate = r1 * (c + 1.0);
    Some((c, rate))
}

/// Round a load estimate to the nearest whole number of equivalent
/// connections (what Fig. 4 plots).
pub fn round_connections(c: f64) -> u32 {
    if !c.is_finite() {
        return u32::MAX;
    }
    c.round().max(0.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_quarter_rate_means_three_others() {
        // §3.2: path rate 1 Gbit/s, our connection sees 250 Mbit/s -> 3.
        let c = cross_traffic_estimate(250e6, 1e9);
        assert!((c - 3.0).abs() < 1e-12);
        assert_eq!(round_connections(c), 3);
    }

    #[test]
    fn idle_path_has_zero_cross_traffic() {
        assert_eq!(cross_traffic_estimate(1e9, 1e9), 0.0);
        // Slight over-measurement clamps to zero rather than going negative.
        assert_eq!(cross_traffic_estimate(1.02e9, 1e9), 0.0);
    }

    #[test]
    fn starved_connection_is_infinite_load() {
        assert!(cross_traffic_estimate(0.0, 1e9).is_infinite());
        assert_eq!(round_connections(f64::INFINITY), u32::MAX);
    }

    #[test]
    fn series_maps_samples() {
        let samples = vec![(0, 1e9), (10_000_000, 500e6), (20_000_000, 250e6)];
        let cs = cross_traffic_series(&samples, 1e9);
        let vals: Vec<f64> = cs.iter().map(|&(_, c)| c).collect();
        assert!((vals[0] - 0.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_rate_recovers_both_parameters() {
        // Ground truth: R = 1 Gbit/s, c = 1 background connection.
        let r1 = 1e9 / 2.0; // R/(c+1)
        let r2 = 1e9 / 3.0; // R/(c+2)
        let (c, rate) = estimate_c_unknown_rate(r1, r2).expect("solvable");
        assert!((c - 1.0).abs() < 1e-9, "c = {c}");
        assert!((rate - 1e9).abs() < 1.0, "rate = {rate}");
    }

    #[test]
    fn unknown_rate_with_no_contention_returns_none() {
        // Second connection did not dent the first: hose elsewhere.
        assert!(estimate_c_unknown_rate(500e6, 500e6).is_none());
        assert!(estimate_c_unknown_rate(500e6, 600e6).is_none());
        assert!(estimate_c_unknown_rate(0.0, 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_path_rate_rejected() {
        cross_traffic_estimate(1.0, 0.0);
    }
}
