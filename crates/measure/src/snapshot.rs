//! Network snapshots: the measurement product placement consumes.

use choreo_topology::{Nanos, VmId};

/// How concurrent connections share capacity (paper Algorithm 1, line 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateModel {
    /// Each VM's *egress* is capped; all connections out of a VM share its
    /// hose (what §4.3/§4.4 found on EC2 and Rackspace).
    Hose,
    /// Each path is an independent pipe; connections on the same path share
    /// it, connections on different paths do not interact.
    Pipe,
}

/// Abstraction over "a set of VMs we can measure": implemented by the
/// packet-level cloud (UDP trains + netperf), the flow-level cloud
/// (fair-share probes), and — in principle — real agents over sockets.
pub trait MeasureBackend {
    /// Number of VMs in the allocation.
    fn n_vms(&self) -> usize;

    /// Fast single-path throughput estimate (packet train in the paper).
    /// Returns estimated bulk-TCP throughput in bits/s.
    fn probe_path(&mut self, a: VmId, b: VmId) -> f64;

    /// Probe many ordered pairs; fills `out[i]` with the estimate for
    /// `pairs[i]`.
    ///
    /// Default: sequential [`MeasureBackend::probe_path`] calls. Backends
    /// that can score many candidates against one network state — the
    /// flow-level cloud batches all pairs through a single what-if solve —
    /// override this, turning the mesh measurement and the placer's
    /// candidate scoring from `O(pairs)` solver passes into one.
    fn probe_paths(&mut self, pairs: &[(VmId, VmId)], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(pairs.len());
        for &(a, b) in pairs {
            let rate = self.probe_path(a, b);
            out.push(rate);
        }
    }

    /// Ground-truth bulk TCP measurement of `duration` (netperf).
    fn netperf(&mut self, a: VmId, b: VmId, duration: Nanos) -> f64;

    /// Concurrent bulk transfers on all `pairs` for `duration`; returns
    /// per-pair throughput (bits/s), in order.
    fn concurrent_netperf(&mut self, pairs: &[(VmId, VmId)], duration: Nanos) -> Vec<f64>;

    /// Provider-visible traceroute hop count.
    fn traceroute(&mut self, a: VmId, b: VmId) -> usize;
}

/// Measured state of a tenant's VM mesh: everything Algorithm 1 needs.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    n: usize,
    /// Row-major n×n inter-VM rates, bits/s. Diagonal = intra-VM
    /// (effectively infinite; stored as `f64::INFINITY`).
    rates: Vec<f64>,
    /// Per-VM hose (egress) rates, maintained alongside `rates` so
    /// placement's inner loop reads them in O(1) instead of scanning a
    /// row per candidate.
    hose: Vec<f64>,
    /// Rate-sharing model for placement simulations.
    pub model: RateModel,
    /// Traceroute hop counts (same layout), if collected.
    pub hops: Option<Vec<usize>>,
}

impl NetworkSnapshot {
    /// Build from a dense rate matrix (diagonal entries are forced to ∞).
    pub fn from_rates(n: usize, mut rates: Vec<f64>, model: RateModel) -> Self {
        assert_eq!(rates.len(), n * n);
        for i in 0..n {
            rates[i * n + i] = f64::INFINITY;
        }
        assert!(rates.iter().all(|r| *r > 0.0), "all measured rates must be positive");
        let mut snap = NetworkSnapshot { n, rates, hose: vec![0.0; n], model, hops: None };
        for i in 0..n {
            snap.hose[i] = snap.scan_hose_rate(i);
        }
        snap
    }

    /// Recompute one VM's hose rate by scanning its row.
    fn scan_hose_rate(&self, a: usize) -> f64 {
        (0..self.n).filter(|&j| j != a).map(|j| self.rates[a * self.n + j]).fold(0.0, f64::max)
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.n
    }

    /// Measured rate from `a` to `b` (∞ when `a == b`).
    pub fn rate(&self, a: VmId, b: VmId) -> f64 {
        self.rates[a.0 as usize * self.n + b.0 as usize]
    }

    /// Overwrite one path's rate (used by re-measurement). Keeps the
    /// cached hose rate of `a` consistent.
    pub fn set_rate(&mut self, a: VmId, b: VmId, bps: f64) {
        assert!(bps > 0.0);
        if a != b {
            let i = a.0 as usize;
            let old = self.rates[i * self.n + b.0 as usize];
            self.rates[i * self.n + b.0 as usize] = bps;
            if bps >= self.hose[i] {
                self.hose[i] = bps;
            } else if old >= self.hose[i] {
                // The previous row maximum shrank; rescan the row.
                self.hose[i] = self.scan_hose_rate(i);
            }
        }
    }

    /// Estimated hose (egress) rate of a VM: the maximum measured rate out
    /// of it. Under source rate-limiting a single connection can saturate
    /// the hose, so the max over destinations is a consistent estimator.
    /// O(1): maintained incrementally by [`NetworkSnapshot::set_rate`].
    pub fn hose_rate(&self, a: VmId) -> f64 {
        self.hose[a.0 as usize]
    }

    /// All finite rates (off-diagonal), for CDFs.
    pub fn path_rates(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.n * (self.n - 1));
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    v.push(self.rates[i * self.n + j]);
                }
            }
        }
        v
    }

    /// Measure every ordered pair with the backend's fast probe and
    /// assemble a snapshot (the paper's "snapshot of the network within a
    /// few minutes for a ten-node topology"). The full mesh goes through
    /// [`MeasureBackend::probe_paths`] as one batch, so backends with a
    /// batched what-if solver pay a single solve for the whole snapshot.
    pub fn measure<B: MeasureBackend>(backend: &mut B, model: RateModel) -> NetworkSnapshot {
        let n = backend.n_vms();
        let mut pairs = Vec::with_capacity(n * n.saturating_sub(1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    pairs.push((VmId(i as u32), VmId(j as u32)));
                }
            }
        }
        let mut probed = Vec::new();
        backend.probe_paths(&pairs, &mut probed);
        assert_eq!(probed.len(), pairs.len(), "backend probed every pair");
        let mut rates = vec![f64::INFINITY; n * n];
        for (&(a, b), &rate) in pairs.iter().zip(&probed) {
            rates[a.0 as usize * n + b.0 as usize] = rate;
        }
        let mut snap = NetworkSnapshot::from_rates(n, rates, model);
        let mut hops = vec![0usize; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    hops[i * n + j] = backend.traceroute(VmId(i as u32), VmId(j as u32));
                }
            }
        }
        snap.hops = Some(hops);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap3() -> NetworkSnapshot {
        // Rates: 0->1 = 10, 0->2 = 20, 1->2 = 30, etc.
        let rates = vec![
            0.0, 10.0, 20.0, //
            15.0, 0.0, 30.0, //
            25.0, 35.0, 0.0,
        ];
        NetworkSnapshot::from_rates(3, rates, RateModel::Hose)
    }

    #[test]
    fn diagonal_is_infinite() {
        let s = snap3();
        assert!(s.rate(VmId(0), VmId(0)).is_infinite());
        assert_eq!(s.rate(VmId(0), VmId(1)), 10.0);
        assert_eq!(s.rate(VmId(1), VmId(0)), 15.0);
    }

    #[test]
    fn hose_rate_is_max_egress() {
        let s = snap3();
        assert_eq!(s.hose_rate(VmId(0)), 20.0);
        assert_eq!(s.hose_rate(VmId(2)), 35.0);
    }

    #[test]
    fn path_rates_excludes_diagonal() {
        let s = snap3();
        let r = s.path_rates();
        assert_eq!(r.len(), 6);
        assert!(r.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn hose_rate_cache_tracks_set_rate() {
        let mut s = snap3();
        // Raising the row max updates the cache.
        s.set_rate(VmId(0), VmId(1), 50.0);
        assert_eq!(s.hose_rate(VmId(0)), 50.0);
        // Shrinking the current max forces a rescan to the runner-up.
        s.set_rate(VmId(0), VmId(1), 1.0);
        assert_eq!(s.hose_rate(VmId(0)), 20.0);
        // Non-max updates leave the cache alone.
        s.set_rate(VmId(2), VmId(1), 30.0);
        assert_eq!(s.hose_rate(VmId(2)), 30.0);
        assert_eq!(s.hose_rate(VmId(1)), 30.0);
    }

    #[test]
    fn set_rate_ignores_diagonal() {
        let mut s = snap3();
        s.set_rate(VmId(0), VmId(0), 5.0);
        assert!(s.rate(VmId(0), VmId(0)).is_infinite());
        s.set_rate(VmId(0), VmId(1), 99.0);
        assert_eq!(s.rate(VmId(0), VmId(1)), 99.0);
    }

    struct FakeBackend {
        n: usize,
    }

    impl MeasureBackend for FakeBackend {
        fn n_vms(&self) -> usize {
            self.n
        }
        fn probe_path(&mut self, a: VmId, b: VmId) -> f64 {
            ((a.0 + 1) * 100 + b.0 + 1) as f64
        }
        fn netperf(&mut self, a: VmId, b: VmId, _d: Nanos) -> f64 {
            self.probe_path(a, b)
        }
        fn concurrent_netperf(&mut self, pairs: &[(VmId, VmId)], _d: Nanos) -> Vec<f64> {
            pairs.iter().map(|&(a, b)| self.probe_path(a, b)).collect()
        }
        fn traceroute(&mut self, a: VmId, b: VmId) -> usize {
            if a == b {
                0
            } else {
                4
            }
        }
    }

    #[test]
    fn measure_probes_all_ordered_pairs() {
        let mut b = FakeBackend { n: 3 };
        let s = NetworkSnapshot::measure(&mut b, RateModel::Pipe);
        assert_eq!(s.n_vms(), 3);
        assert_eq!(s.rate(VmId(0), VmId(1)), 102.0);
        assert_eq!(s.rate(VmId(2), VmId(0)), 301.0);
        assert_eq!(s.hops.as_ref().unwrap()[1], 4); // (0,1)
        assert_eq!(s.model, RateModel::Pipe);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_rates_rejected() {
        NetworkSnapshot::from_rates(2, vec![0.0, -1.0, 1.0, 0.0], RateModel::Pipe);
    }
}
