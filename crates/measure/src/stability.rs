//! Temporal stability analysis (paper §4.1, Fig. 7).
//!
//! The paper measures each path's throughput every 10 seconds for
//! 30 minutes and asks: how well does the measurement from τ minutes ago
//! predict the current one? The answer (≤ 6% error for 95% of EC2 paths,
//! even at τ = 30 min) is what lets Choreo measure infrequently.

use choreo_topology::Nanos;

/// A regularly sampled throughput series for one path.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilitySeries {
    /// Sampling interval.
    pub interval: Nanos,
    /// Throughput samples (bits/s), oldest first.
    pub samples: Vec<f64>,
}

impl StabilitySeries {
    /// New series; panics on a zero interval.
    pub fn new(interval: Nanos, samples: Vec<f64>) -> Self {
        assert!(interval > 0, "zero sampling interval");
        StabilitySeries { interval, samples }
    }

    /// Relative prediction errors `|λ_c − λ_{c−τ}| / λ_c` for every sample
    /// `c` that has a predecessor τ ago. τ is rounded down to a whole
    /// number of intervals.
    pub fn relative_errors(&self, tau: Nanos) -> Vec<f64> {
        let lag = (tau / self.interval).max(1) as usize;
        self.samples
            .iter()
            .enumerate()
            .skip(lag)
            .filter(|&(_, &cur)| cur > 0.0)
            .map(|(i, &cur)| (cur - self.samples[i - lag]).abs() / cur)
            .collect()
    }

    /// Median of the relative errors at lag τ.
    pub fn median_error(&self, tau: Nanos) -> f64 {
        percentile(&mut self.relative_errors(tau), 0.5)
    }

    /// Mean of the relative errors at lag τ.
    pub fn mean_error(&self, tau: Nanos) -> f64 {
        let e = self.relative_errors(tau);
        assert!(!e.is_empty(), "series shorter than lag");
        e.iter().sum::<f64>() / e.len() as f64
    }
}

/// p-th percentile (0 ≤ p ≤ 1) of an unsorted slice (sorted in place).
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&p));
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
    let idx = ((values.len() - 1) as f64 * p).round() as usize;
    values[idx]
}

/// Empirical CDF points `(value, fraction ≤ value)` for plotting, one per
/// sample, sorted ascending — the form every CDF figure in the paper uses.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
    let n = sorted.len() as f64;
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use choreo_topology::SECS;

    #[test]
    fn constant_series_has_zero_error() {
        // 30 min of 10 s samples plus one extra so even the longest paper
        // lag (τ = 30 min) has a sample to predict.
        let s = StabilitySeries::new(10 * SECS, vec![1e9; 181]);
        for tau in [60 * SECS, 300 * SECS, 1800 * SECS] {
            assert_eq!(s.median_error(tau), 0.0);
            assert_eq!(s.mean_error(tau), 0.0);
        }
    }

    #[test]
    fn step_change_shows_up_at_matching_lags() {
        // 1 Gbit/s for 90 samples then 500 Mbit/s for 90: predictions that
        // straddle the step err by 100% (old/new = 2x), others by 0.
        let mut v = vec![1e9; 90];
        v.extend(vec![5e8; 90]);
        let s = StabilitySeries::new(10 * SECS, v);
        let errs = s.relative_errors(10 * SECS); // lag 1: exactly one bad point
        let bad = errs.iter().filter(|e| **e > 0.5).count();
        assert_eq!(bad, 1);
        let errs = s.relative_errors(300 * SECS); // lag 30: thirty bad points
        let bad = errs.iter().filter(|e| **e > 0.5).count();
        assert_eq!(bad, 30);
    }

    #[test]
    fn relative_error_matches_hand_computation() {
        let s = StabilitySeries::new(SECS, vec![100.0, 80.0]);
        let errs = s.relative_errors(SECS);
        // |80 - 100| / 80 = 0.25.
        assert_eq!(errs, vec![0.25]);
    }

    #[test]
    fn percentile_and_cdf_agree() {
        let vals = vec![3.0, 1.0, 2.0, 4.0];
        let mut v = vals.clone();
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 1.0), 4.0);
        let c = cdf(&vals);
        assert_eq!(c.first(), Some(&(1.0, 0.25)));
        assert_eq!(c.last(), Some(&(4.0, 1.0)));
        // CDF is non-decreasing in both coordinates.
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn sub_interval_tau_clamps_to_one_lag() {
        let s = StabilitySeries::new(10 * SECS, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.relative_errors(1).len(), 2, "lag clamps to 1 interval");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_rejected() {
        percentile(&mut [], 0.5);
    }

    #[test]
    fn empty_and_single_sample_series_yield_no_errors() {
        let empty = StabilitySeries::new(10 * SECS, vec![]);
        assert!(empty.relative_errors(10 * SECS).is_empty());
        // One sample has no predecessor at any lag.
        let one = StabilitySeries::new(10 * SECS, vec![1e9]);
        assert!(one.relative_errors(10 * SECS).is_empty());
        assert!(one.relative_errors(1).is_empty());
    }

    #[test]
    fn all_zero_samples_yield_no_errors_and_no_nans() {
        // λ_c = 0 would divide by zero; the cur > 0 filter must drop
        // those points instead of emitting NaN.
        let zeros = StabilitySeries::new(SECS, vec![0.0; 16]);
        assert!(zeros.relative_errors(SECS).is_empty());
        // Mixed zeros: only positive currents are scored, and a zero
        // predecessor gives a finite 100% error, never NaN or inf.
        let mixed = StabilitySeries::new(SECS, vec![0.0, 2.0, 0.0, 4.0]);
        let errs = mixed.relative_errors(SECS);
        assert_eq!(errs, vec![1.0, 1.0]);
        assert!(errs.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn tau_beyond_the_series_yields_no_errors() {
        // Lag 180 against 3 samples: nothing to predict from. The error
        // set is empty rather than panicking or wrapping — callers (the
        // drift detector) gate on relative_errors directly.
        let s = StabilitySeries::new(10 * SECS, vec![1.0, 2.0, 3.0]);
        assert!(s.relative_errors(1800 * SECS).is_empty());
    }

    #[test]
    #[should_panic(expected = "shorter than lag")]
    fn mean_error_beyond_the_series_panics_loudly() {
        // mean_error's contract stays a loud panic, not a quiet NaN.
        StabilitySeries::new(10 * SECS, vec![1.0, 2.0]).mean_error(1800 * SECS);
    }
}
