//! Choreo's measurement subsystem (paper §3, validated in §4).
//!
//! Three measurements drive placement:
//!
//! 1. **Pairwise TCP throughput** — estimated from UDP packet trains in
//!    under a second per path instead of a 10-second `netperf` run
//!    ([`estimator`]). The estimate is
//!    `min{ P·Σnᵢ/Σtᵢ , MSS·C/(RTT·√ℓ) }`: the observed burst rate with the
//!    paper's head/tail loss correction, capped by the Mathis et al. TCP
//!    throughput bound when losses occurred.
//! 2. **Cross traffic** — the equivalent number `c` of backlogged TCP
//!    connections on a path, from 10 ms throughput samples of one bulk
//!    connection: `c = c₁/c₂ − 1` ([`crosstraffic`]).
//! 3. **Bottleneck location** — concurrent-transfer interference tests plus
//!    traceroute-based rack clustering decide whether paths share
//!    bottlenecks and whether the provider rate-limits at the source with a
//!    hose model ([`bottleneck`]).
//!
//! [`stability`] quantifies how well past throughput predicts current
//! throughput (Fig. 7), and [`snapshot`] assembles everything into the
//! [`NetworkSnapshot`] the placement algorithms consume. Measurement is
//! expressed against the [`MeasureBackend`] trait so the same code runs on
//! the packet-level simulator, the flow-level simulator, or (via
//! `choreo-wire`) real sockets.

pub mod bottleneck;
pub mod crosstraffic;
pub mod estimator;
pub mod snapshot;
pub mod stability;

pub use bottleneck::{interferes, BottleneckSurvey, InterferenceTest};
pub use crosstraffic::{cross_traffic_estimate, cross_traffic_series, estimate_c_unknown_rate};
pub use estimator::{estimate_from_report, measurement_time, TrainEstimate};
pub use snapshot::{MeasureBackend, NetworkSnapshot, RateModel};
pub use stability::{cdf, StabilitySeries};
