//! Bottleneck location and rate-limit inference (paper §3.3, §4.3).
//!
//! To decide whether paths `A→B` and `C→D` share a bottleneck, run
//! transfers on both concurrently: if `A→B`'s throughput drops
//! significantly below its solo value, they share one. Two structural
//! rules (§3.3.2) make the search cheap in tree topologies, and the test
//! doubles as a rate-limit detector: if same-source pairs always interfere
//! while distinct-endpoint pairs never do — and the same-source rates *sum*
//! to the solo rate — the provider rate-limits each VM's egress hose
//! (exactly what §4.3 found on EC2 and Rackspace).

use choreo_topology::VmId;

use crate::snapshot::{MeasureBackend, RateModel};

/// Fractional throughput drop above which two paths are declared to share
/// a bottleneck (the paper requires a "significant" decrease; 25% cleanly
/// separates a halved rate from noise).
pub const INTERFERENCE_THRESHOLD: f64 = 0.25;

/// Does a concurrent rate constitute interference against a solo rate?
pub fn interferes(solo_bps: f64, concurrent_bps: f64) -> bool {
    if solo_bps <= 0.0 {
        return false;
    }
    (solo_bps - concurrent_bps) / solo_bps > INTERFERENCE_THRESHOLD
}

/// Result of one pairwise interference experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceTest {
    /// First path.
    pub path_a: (VmId, VmId),
    /// Second path.
    pub path_b: (VmId, VmId),
    /// Solo throughput of the first path.
    pub solo_a_bps: f64,
    /// First path's throughput while the second transferred concurrently.
    pub concurrent_a_bps: f64,
    /// Second path's concurrent throughput (for hose-sum checks).
    pub concurrent_b_bps: f64,
}

impl InterferenceTest {
    /// Did the two paths interfere?
    pub fn interfered(&self) -> bool {
        interferes(self.solo_a_bps, self.concurrent_a_bps)
    }

    /// Do the concurrent rates sum back to the solo rate (within `tol`)?
    /// True for hose-model rate limiting: the hose capacity is conserved.
    pub fn conserves_sum(&self, tol: f64) -> bool {
        let sum = self.concurrent_a_bps + self.concurrent_b_bps;
        self.solo_a_bps > 0.0 && ((sum - self.solo_a_bps) / self.solo_a_bps).abs() <= tol
    }
}

/// Run one interference experiment on a backend.
pub fn run_interference_test<B: MeasureBackend>(
    backend: &mut B,
    path_a: (VmId, VmId),
    path_b: (VmId, VmId),
    duration: choreo_topology::Nanos,
) -> InterferenceTest {
    let solo_a_bps = backend.netperf(path_a.0, path_a.1, duration);
    let rates = backend.concurrent_netperf(&[path_a, path_b], duration);
    InterferenceTest {
        path_a,
        path_b,
        solo_a_bps,
        concurrent_a_bps: rates[0],
        concurrent_b_bps: rates[1],
    }
}

/// Aggregate results of the §4.3 experiment: many distinct-endpoint pairs
/// and many same-source pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckSurvey {
    /// Fraction of distinct-endpoint (4 unique VMs) pairs that interfered.
    pub distinct_interference: f64,
    /// Fraction of same-source pairs that interfered.
    pub same_source_interference: f64,
    /// Fraction of same-source pairs whose concurrent rates summed to the
    /// solo rate (hose conservation).
    pub hose_conservation: f64,
    /// Number of experiments of each kind.
    pub trials: usize,
}

impl BottleneckSurvey {
    /// Infer the provider's rate-limiting model: if same-source connections
    /// always collide, distinct ones never do, and capacity is conserved,
    /// the bottleneck is the source hose; otherwise treat paths as
    /// independent pipes.
    pub fn infer_model(&self) -> RateModel {
        if self.same_source_interference > 0.9
            && self.distinct_interference < 0.1
            && self.hose_conservation > 0.8
        {
            RateModel::Hose
        } else {
            RateModel::Pipe
        }
    }
}

/// Run the full §4.3 survey on `vms` (needs ≥ 4 VMs): `trials` experiments
/// of each kind over rotating VM choices.
pub fn survey<B: MeasureBackend>(
    backend: &mut B,
    vms: &[VmId],
    trials: usize,
    duration: choreo_topology::Nanos,
) -> BottleneckSurvey {
    assert!(vms.len() >= 4, "survey needs at least 4 VMs");
    let n = vms.len();
    let mut distinct_hits = 0usize;
    let mut same_hits = 0usize;
    let mut conserved = 0usize;
    for t in 0..trials {
        // Distinct endpoints: A->B with C->D (all different VMs).
        let a = vms[t % n];
        let b = vms[(t + 1) % n];
        let c = vms[(t + 2) % n];
        let d = vms[(t + 3) % n];
        let test = run_interference_test(backend, (a, b), (c, d), duration);
        if test.interfered() {
            distinct_hits += 1;
        }
        // Same source: A->B with A->C.
        let test = run_interference_test(backend, (a, b), (a, c), duration);
        if test.interfered() {
            same_hits += 1;
        }
        if test.conserves_sum(0.15) {
            conserved += 1;
        }
    }
    BottleneckSurvey {
        distinct_interference: distinct_hits as f64 / trials as f64,
        same_source_interference: same_hits as f64 / trials as f64,
        hose_conservation: conserved as f64 / trials as f64,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halved_rate_is_interference() {
        assert!(interferes(1e9, 0.5e9));
        assert!(!interferes(1e9, 0.9e9), "10% dip is noise");
        assert!(!interferes(0.0, 0.0), "dead path can't interfere");
    }

    #[test]
    fn hose_conservation_detected() {
        let t = InterferenceTest {
            path_a: (VmId(0), VmId(1)),
            path_b: (VmId(0), VmId(2)),
            solo_a_bps: 1e9,
            concurrent_a_bps: 0.52e9,
            concurrent_b_bps: 0.49e9,
        };
        assert!(t.interfered());
        assert!(t.conserves_sum(0.15));
        let not = InterferenceTest { concurrent_b_bps: 1e9, ..t };
        assert!(!not.conserves_sum(0.15), "sum far above solo: not a hose");
    }

    #[test]
    fn survey_infers_hose_from_clean_signals() {
        let s = BottleneckSurvey {
            distinct_interference: 0.0,
            same_source_interference: 1.0,
            hose_conservation: 1.0,
            trials: 20,
        };
        assert_eq!(s.infer_model(), RateModel::Hose);
    }

    #[test]
    fn survey_falls_back_to_pipe() {
        let s = BottleneckSurvey {
            distinct_interference: 0.6, // middle-of-network congestion
            same_source_interference: 1.0,
            hose_conservation: 0.9,
            trials: 20,
        };
        assert_eq!(s.infer_model(), RateModel::Pipe);
    }
}
