//! The always-on, multi-tenant placement service.
//!
//! The paper's workflow (measure → profile → place, §2) is framed per
//! application, but its evaluation world is a shared cloud under churn.
//! This crate is that world's control plane: a deterministic,
//! long-running service that consumes a stream of tenant events —
//! arrival with a profiled traffic matrix, intensity changes, departure
//! (see [`choreo_profile::stream`]) — and keeps a live
//! [`choreo_flowsim::FlowSim`] cluster placed well over time.
//!
//! Three cooperating pieces:
//!
//! * **[`OnlineScheduler`]** — the event loop. Arrivals are placed by
//!   Algorithm 1 over **live batched what-if probes**
//!   ([`choreo_flowsim::FlowSim::probe_rates`] through a
//!   [`rater::LiveRater`]), never a measured snapshot, within the
//!   [`OnlineConfig::candidate_hosts`] hosts that have the most free
//!   CPU — the power-of-k-choices trick that bounds per-arrival latency
//!   on large clusters. Admitted tenants' heaviest transfers run as
//!   real simulated flows; departures tear them down in one arena dirty
//!   window ([`choreo_flowsim::FlowSim::stop_flows_now`]) so the next
//!   reallocation is a single warm delta solve.
//! * **Admission control** — CPU feasibility is checked against a
//!   global ledger; arrivals that do not fit wait in a bounded FIFO
//!   queue that is retried whenever a departure frees capacity, and are
//!   rejected once the queue is full. The ledger, the queue bound and
//!   placement validity are service invariants
//!   ([`OnlineScheduler::check_invariants`], property-tested).
//! * **The migration planner** ([`migrate`]) — §2.4's single-app
//!   re-evaluation generalized into a cadence-driven cluster-wide pass:
//!   scan for degraded tenants, price candidate moves with probe
//!   batches, execute the best improvements under a per-pass budget
//!   with hysteresis and cooldowns (the decision rule is shared with
//!   `core`'s [`choreo::migrate::improves_enough`]).
//!
//! Schedulers are constructed through the [`SchedulerBuilder`]
//! (topology + routes, then chained config/seed/metrics/solver-mode
//! setters). Every decision is observable twice over: the
//! [`metrics`] instruments (a [`ServiceMetrics`] set, optionally
//! registered in a [`choreo_metrics::Registry`] for prometheus text
//! exposition) and the bounded per-decision [`TraceRing`] in
//! [`ServiceStats`]. Both are observational only — nothing reads them
//! back into placement.
//!
//! # Network drift and failures
//!
//! The network under the service is not frozen
//! ([`choreo_profile::netstream`]): link failures, degradations and
//! maintenance drains arrive as [`choreo_profile::NetworkEvent`]s,
//! `(at)`-merged with the tenant stream (tenants win ties), and flow
//! through [`OnlineScheduler::network_step`] into the simulator's
//! runtime-capacity path ([`choreo_flowsim::FlowSim::set_capacity`]).
//! The adaptation loop closes in three stages:
//!
//! 1. **inject** — the event cuts or restores capacity in the arena's
//!    dirty window; the next reallocation re-solves bit-identical to a
//!    cold solve at the new capacities, for any worker count;
//! 2. **detect** — a re-measurement cadence ([`DriftConfig`]) refreshes
//!    every running tenant's service score into a
//!    [`choreo_measure::stability::StabilitySeries`]; an
//!    epoch-over-epoch relative error above the paper's §4.1 stability
//!    envelope (6 %) is *drift* — the network moved under the tenant.
//!    Link failures additionally scan for stranded tenants on the spot;
//! 3. **migrate** — drifted and failure-stranded tenants are forced
//!    into the migration planner ahead of its cadence (cooldown and
//!    degradation arming bypassed; the hysteresis bar still gates every
//!    move). Admission degrades gracefully through the same queue, and
//!    rejections during a failure epoch are counted separately
//!    (`choreo_failure_rejected_total`).
//!
//! Whole service runs are **reproducible bit-for-bit**: the same event
//! stream, seed and config give the same trajectory digest
//! ([`ServiceStats::trace_hash`]) for any solver worker count, because
//! warm and sharded solves are bit-identical — and network events are
//! digested like any other decision, so fault-laden runs replay
//! exactly. `crates/service` wraps this scheduler in a networked
//! request loop and re-asserts the same digest equality through its
//! simulated transport. `bench_online` measures the service at 10k+
//! tenant events/sec on a 128-host topology and compares mean tenant
//! service rates against the random-placement baseline
//! (`BENCH_online.json`).

pub mod builder;
pub mod config;
pub mod metrics;
pub mod migrate;
pub mod rater;
pub mod scheduler;
pub mod stats;

pub use builder::SchedulerBuilder;
pub use config::{DriftConfig, MigrationConfig, OnlineConfig, PlacementPolicy};
pub use metrics::{
    PodLabel, ReasonLabel, ServiceMetrics, ShapeLabel, TenantBucket, TENANT_BUCKETS,
};
pub use rater::LiveRater;
pub use scheduler::OnlineScheduler;
pub use stats::{Cause, Decision, DecisionKind, RejectReason, ServiceStats, TraceRing};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use choreo_profile::{TenantEvent, TenantEventKind};
    use choreo_topology::{two_rack, LinkSpec, RouteTable, GBIT, MICROS, SECS};

    use super::*;

    fn service(cfg: OnlineConfig) -> OnlineScheduler {
        let topo = Arc::new(two_rack(
            4,
            LinkSpec::new(GBIT, 5 * MICROS),
            LinkSpec::new(2.0 * GBIT, 20 * MICROS),
        ));
        let routes = Arc::new(RouteTable::new(&topo));
        SchedulerBuilder::new(topo, routes).config(cfg).seed(7).build()
    }

    fn pair_app(name: &str, cpu: f64) -> choreo_profile::AppProfile {
        let mut m = choreo_profile::TrafficMatrix::zeros(2);
        m.set(0, 1, 1_000_000_000);
        choreo_profile::AppProfile::new(name, vec![cpu, cpu], m, 0)
    }

    /// `n` tasks of `cpu` cores each, one heavy 0→1 transfer.
    fn fat_app(name: &str, n: usize, cpu: f64) -> choreo_profile::AppProfile {
        let mut m = choreo_profile::TrafficMatrix::zeros(n);
        m.set(0, 1, 1_000_000_000);
        choreo_profile::AppProfile::new(name, vec![cpu; n], m, 0)
    }

    fn arrive(at: u64, tenant: u64, app: choreo_profile::AppProfile) -> TenantEvent {
        TenantEvent { at, tenant, kind: TenantEventKind::Arrive { app: Box::new(app) } }
    }

    #[test]
    fn admits_and_departs_a_tenant() {
        let mut s = service(OnlineConfig::default());
        s.step(&arrive(0, 0, pair_app("a", 1.0)));
        assert_eq!(s.active_tenants(), 1);
        assert_eq!(s.stats().admitted, 1);
        s.check_invariants();
        // Greedy co-locates the chatty pair on a 4-core host: no flows.
        let p = s.tenant_placement(0).expect("admitted");
        assert_eq!(p.assignment[0], p.assignment[1], "chatty pair co-locates");
        s.step(&TenantEvent { at: SECS, tenant: 0, kind: TenantEventKind::Depart });
        assert_eq!(s.active_tenants(), 0);
        assert_eq!(s.stats().departed, 1);
        s.check_invariants();
    }

    #[test]
    fn queue_fills_retries_and_rejects() {
        let cfg = OnlineConfig { queue_capacity: 1, ..OnlineConfig::default() };
        let mut s = service(cfg);
        // 8 hosts × 4 cores = 32 cores; each tenant takes 16 (4 tasks ×
        // 4 cores), so two tenants fill the cluster.
        s.step(&arrive(0, 0, fat_app("big0", 4, 4.0)));
        s.step(&arrive(1, 1, fat_app("big1", 4, 4.0)));
        assert_eq!(s.active_tenants(), 2);
        // Full: the next waits, the one after is rejected.
        s.step(&arrive(2, 2, fat_app("wait", 4, 4.0)));
        assert_eq!(s.queue_len(), 1);
        s.step(&arrive(3, 3, fat_app("reject", 4, 4.0)));
        assert_eq!(s.stats().rejected, 1);
        s.check_invariants();
        // A departure frees capacity and admits the waiter.
        s.step(&TenantEvent { at: SECS, tenant: 0, kind: TenantEventKind::Depart });
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.stats().queue_admitted, 1);
        assert_eq!(s.active_tenants(), 2);
        s.check_invariants();
        // A queued tenant can also depart before being admitted.
        s.step(&arrive(2 * SECS, 4, fat_app("wait2", 4, 4.0)));
        assert_eq!(s.queue_len(), 1);
        s.step(&TenantEvent { at: 3 * SECS, tenant: 4, kind: TenantEventKind::Depart });
        assert_eq!(s.queue_len(), 0);
        s.check_invariants();
    }

    #[test]
    fn intensity_changes_scale_flow_counts() {
        // 1-core hosts force the pair apart, so it runs a network flow.
        let cfg = OnlineConfig { cores_per_host: 1.0, ..OnlineConfig::default() };
        let mut s = service(cfg);
        s.step(&arrive(0, 0, pair_app("a", 1.0)));
        assert_eq!(s.sim_mut().active_flows(), 1);
        s.step(&TenantEvent {
            at: SECS,
            tenant: 0,
            kind: TenantEventKind::SetIntensity { intensity: 3 },
        });
        assert_eq!(s.sim_mut().active_flows(), 3);
        s.check_invariants();
        s.step(&TenantEvent {
            at: 2 * SECS,
            tenant: 0,
            kind: TenantEventKind::SetIntensity { intensity: 2 },
        });
        assert_eq!(s.sim_mut().active_flows(), 2);
        s.check_invariants();
        s.step(&TenantEvent { at: 3 * SECS, tenant: 0, kind: TenantEventKind::Depart });
        assert_eq!(s.sim_mut().active_flows(), 0);
        s.check_invariants();
    }

    #[test]
    fn intensity_bump_alone_does_not_trigger_migration() {
        // A tenant that triples its own connection count sees its
        // per-connection score drop by construction; on an otherwise
        // idle network that self-induced drop must not read as network
        // degradation (the baseline re-anchors on the new layout, and
        // move predictions divide the single-connection probe by the
        // intensity).
        let cfg = OnlineConfig {
            cores_per_host: 1.0,
            migration: MigrationConfig {
                cadence: None,
                cooldown: 0,
                degraded_fraction: 0.8,
                min_improvement: 0.10,
                budget: 4,
            },
            ..OnlineConfig::default()
        };
        let mut s = service(cfg);
        s.step(&arrive(0, 0, pair_app("a", 1.0)));
        s.step(&TenantEvent {
            at: SECS,
            tenant: 0,
            kind: TenantEventKind::SetIntensity { intensity: 3 },
        });
        s.sim_mut().run_until(2 * SECS);
        s.force_migration_pass();
        assert_eq!(s.stats().migrations, 0, "self-induced sharing is not degradation");
        s.check_invariants();
    }

    #[test]
    fn planner_moves_a_degraded_tenant() {
        // 1-core hosts: tasks spread, flows are real. Disable the
        // cadence; drive the pass by hand.
        let cfg = OnlineConfig {
            cores_per_host: 1.0,
            migration: MigrationConfig {
                cadence: None,
                cooldown: 0,
                degraded_fraction: 0.8,
                min_improvement: 0.10,
                budget: 4,
            },
            ..OnlineConfig::default()
        };
        let mut s = service(cfg);
        s.step(&arrive(0, 0, pair_app("victim", 1.0)));
        let before = s.tenant_placement(0).expect("admitted").clone();
        s.check_invariants();
        // Congest the victim's path with 7 background flows.
        let (a, b) = (before.assignment[0] as usize, before.assignment[1] as usize);
        let hosts = s.sim_mut().topology().hosts().to_vec();
        let keys: Vec<_> = (0..7)
            .map(|_| s.sim_mut().start_flow_now(hosts[a], hosts[b], None, None, u64::MAX))
            .collect();
        s.sim_mut().run_until(SECS);
        s.force_migration_pass();
        assert_eq!(s.stats().migrations, 1, "degraded tenant moved");
        let after = s.tenant_placement(0).expect("still running").clone();
        assert_ne!(before, after, "placement changed");
        s.check_invariants();
        // A second pass immediately after must not flap.
        s.force_migration_pass();
        assert_eq!(s.stats().migrations, 1, "no flapping");
        s.sim_mut().stop_flows_now(&keys);
        s.step(&TenantEvent { at: 2 * SECS, tenant: 0, kind: TenantEventKind::Depart });
        s.check_invariants();
    }

    #[test]
    fn forced_pass_bypasses_cooldown_and_counts_failure_migrations() {
        // Same setup as the planner test, but the cooldown is armed so
        // the cadence scan must skip the victim; only the forced route
        // (drift/failure) may move it.
        let cfg = OnlineConfig {
            cores_per_host: 1.0,
            migration: MigrationConfig {
                cadence: None,
                cooldown: 100 * SECS,
                degraded_fraction: 0.8,
                min_improvement: 0.10,
                budget: 4,
            },
            drift: DriftConfig { cadence: None, ..DriftConfig::default() },
            ..OnlineConfig::default()
        };
        let mut s = service(cfg);
        s.step(&arrive(0, 0, pair_app("victim", 1.0)));
        let before = s.tenant_placement(0).expect("admitted").clone();
        let (a, b) = (before.assignment[0] as usize, before.assignment[1] as usize);
        let hosts = s.sim_mut().topology().hosts().to_vec();
        for _ in 0..7 {
            s.sim_mut().start_flow_now(hosts[a], hosts[b], None, None, u64::MAX);
        }
        s.sim_mut().run_until(SECS);
        s.force_migration_pass();
        assert_eq!(s.stats().migrations, 0, "cooldown holds the cadence scan back");
        s.migration_pass_forced(&[0]);
        assert_eq!(s.stats().migrations, 1, "forced tenant moved");
        assert_eq!(s.stats().failure_migrations, 1, "counted as a forced migration");
        assert!(
            s.stats()
                .decisions()
                .recent()
                .iter()
                .any(|d| d.kind == DecisionKind::ForcedMigration && d.tenant == 0),
            "trace explains the forced move"
        );
        s.check_invariants();
    }

    #[test]
    fn failures_and_recoveries_drive_drift_detection() {
        use choreo_profile::{NetworkEvent, NetworkEventKind};
        // One networked tenant; measurement every second; fail every
        // link, then recover — both capacity swings must read as drift.
        let cfg = OnlineConfig {
            cores_per_host: 1.0,
            migration: MigrationConfig { cadence: None, ..MigrationConfig::default() },
            drift: DriftConfig { cadence: Some(SECS), threshold: 0.06, window: 4 },
            ..OnlineConfig::default()
        };
        let mut s = service(cfg);
        s.step(&arrive(0, 0, pair_app("a", 1.0)));
        let n_links = s.sim_mut().topology().links().len() as u32;
        // t = 1 s: first epoch score (healthy). t = 1.5 s: every link
        // degrades to 40 % of nominal — a uniform cut, so the forced
        // planner has nowhere better and the drift series survives.
        for l in 0..n_links {
            s.network_step(&NetworkEvent {
                at: SECS + SECS / 2,
                link: l,
                kind: NetworkEventKind::LinkDegrade { fraction: 0.4 },
            });
        }
        assert_eq!(s.stats().network_events, n_links as u64);
        let lost = s.sim_mut().capacity_lost_fraction();
        assert!((lost - 0.6).abs() < 0.05, "≈60 % of capacity gone: {lost}");
        // t = 2 s: epoch sees the collapse → drift.
        s.advance_to(2 * SECS + SECS / 4);
        let after_cut = s.stats().drift_detected;
        assert!(after_cut >= 1, "degradation reads as drift");
        assert!(
            s.stats()
                .decisions()
                .recent()
                .iter()
                .any(|d| d.kind == DecisionKind::DriftDetected && d.tenant == 0),
            "trace explains the drift verdict"
        );
        for l in 0..n_links {
            s.network_step(&NetworkEvent {
                at: 2 * SECS + SECS / 2,
                link: l,
                kind: NetworkEventKind::LinkRecover,
            });
        }
        assert_eq!(s.sim_mut().capacity_lost_fraction(), 0.0, "capacity restored");
        // t = 3 s: epoch sees the recovery jump → drift again.
        s.advance_to(3 * SECS + SECS / 4);
        assert!(s.stats().drift_detected > after_cut, "recovery reads as drift");
        s.check_invariants();
    }
}
