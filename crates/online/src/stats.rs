//! Service counters, the deterministic trajectory digest, and the
//! per-decision trace ring.

use choreo_profile::TenantId;
use choreo_topology::Nanos;

/// What the service decided at one point of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Tenant admitted straight from its arrival.
    Admit,
    /// Tenant parked in the wait queue.
    Queue,
    /// Queued tenant admitted by a departure retry.
    QueueAdmit,
    /// Arrival rejected (queue full).
    Reject,
    /// Arrival ignored: the tenant id is already running or queued
    /// (at-least-once delivery hardening).
    Duplicate,
    /// Tenant departed.
    Depart,
    /// Running tenant changed its intensity.
    Intensity,
    /// Migration planner moved the tenant.
    Migrate,
    /// A cluster-wide migration pass ran (tenant is `u64::MAX`).
    MigrationPass,
    /// A link failed, degraded, drained or recovered (tenant is
    /// `u64::MAX`; value is the remaining capacity fraction on that
    /// link — 0 for failures, 1 for recoveries).
    NetworkEvent,
    /// The re-measurement pass found the tenant's epoch-over-epoch
    /// score moved more than the drift threshold (value is the
    /// relative error).
    DriftDetected,
    /// The tenant was moved by a pass it was *forced* into — drift or
    /// link failure routed it to the planner ahead of the cadence.
    ForcedMigration,
    /// Arrival rejected while the cluster had failed links: capacity
    /// was genuinely gone, not merely queued away.
    FailureReject,
}

/// One entry of the decision trace: when, who, what, and the decision's
/// headline number (baseline score for placements, departure score for
/// departures, new intensity for load changes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Simulated (or service-clock) time of the decision.
    pub at: Nanos,
    /// Tenant the decision concerns (`u64::MAX` for cluster-wide ones).
    pub tenant: TenantId,
    /// What was decided.
    pub kind: DecisionKind,
    /// Decision-specific value (see the struct docs).
    pub value: f64,
}

/// A bounded ring of the most recent [`Decision`]s — the service's
/// flight recorder. Contents are a pure function of the decision stream
/// (no wall-clock anywhere), so two bit-identical runs carry identical
/// rings.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRing {
    buf: Vec<Decision>,
    capacity: usize,
    /// All-time decisions pushed (`buf` keeps the last `capacity`).
    total: u64,
}

impl TraceRing {
    /// Ring keeping the last `capacity` decisions (at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing { buf: Vec::new(), capacity: capacity.max(1), total: 0 }
    }

    fn push(&mut self, d: Decision) {
        if self.buf.len() < self.capacity {
            self.buf.push(d);
        } else {
            self.buf[(self.total % self.capacity as u64) as usize] = d;
        }
        self.total += 1;
    }

    /// All-time decisions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained decisions, oldest first.
    pub fn recent(&self) -> Vec<Decision> {
        if self.buf.len() < self.capacity {
            return self.buf.clone();
        }
        let split = (self.total % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }
}

/// Counters of one service run plus a running FNV-1a digest of every
/// decision the service makes (admissions with their placements, queue
/// verdicts, migrations, departure rates). Two runs with equal digests
/// made bit-identical decisions — the property the determinism suite and
/// `bench_online` check across repeats and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Tenant events consumed.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Tenants admitted straight from their arrival.
    pub admitted: u64,
    /// Tenants parked in the wait queue at arrival.
    pub queued: u64,
    /// Queued tenants later admitted by a departure retry.
    pub queue_admitted: u64,
    /// Arrivals rejected because the queue was full.
    pub rejected: u64,
    /// Departures that tore real state down (a running tenant's flows,
    /// or a queued tenant's wait-queue slot). A Depart for a tenant that
    /// was rejected at arrival is a digested no-op, not a departure.
    pub departures: u64,
    /// Intensity-change events applied to running tenants.
    pub intensity_changes: u64,
    /// Migration-planner passes executed.
    pub migration_passes: u64,
    /// Tenants actually moved by the planner.
    pub migrations: u64,
    /// Departed tenants with a recorded service rate.
    pub departed: u64,
    /// Arrivals ignored because the tenant id was already running or
    /// queued (duplicate delivery).
    pub duplicate_arrivals: u64,
    /// Network events consumed (failures, degradations, drains,
    /// recoveries).
    pub network_events: u64,
    /// Re-measurement passes executed.
    pub measurement_passes: u64,
    /// Drift detections: a tenant's epoch-over-epoch score moved more
    /// than the configured threshold.
    pub drift_detected: u64,
    /// Tenants moved by a forced (drift- or failure-triggered) pass.
    pub failure_migrations: u64,
    /// Arrivals rejected while links were down (capacity truly gone).
    pub failure_rejections: u64,
    rate_sum_bps: f64,
    hash: u64,
    trace: TraceRing,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::with_trace_capacity(256)
    }
}

impl ServiceStats {
    /// Fresh stats with a decision ring keeping the last `capacity`
    /// decisions.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        ServiceStats {
            events: 0,
            arrivals: 0,
            admitted: 0,
            queued: 0,
            queue_admitted: 0,
            rejected: 0,
            departures: 0,
            intensity_changes: 0,
            migration_passes: 0,
            migrations: 0,
            departed: 0,
            duplicate_arrivals: 0,
            network_events: 0,
            measurement_passes: 0,
            drift_detected: 0,
            failure_migrations: 0,
            failure_rejections: 0,
            rate_sum_bps: 0.0,
            hash: FNV_OFFSET,
            trace: TraceRing::new(capacity),
        }
    }

    /// Record one decision in the trace ring.
    pub(crate) fn decide(&mut self, at: Nanos, tenant: TenantId, kind: DecisionKind, value: f64) {
        self.trace.push(Decision { at, tenant, kind, value });
    }

    /// The decision flight recorder (most recent decisions, bounded).
    pub fn decisions(&self) -> &TraceRing {
        &self.trace
    }

    /// Fold a word into the trajectory digest.
    pub(crate) fn note(&mut self, word: u64) {
        let mut h = self.hash;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }

    /// Fold a float (by bit pattern) into the trajectory digest.
    pub(crate) fn note_f64(&mut self, x: f64) {
        self.note(x.to_bits());
    }

    /// Record a departed tenant's mean service rate.
    pub(crate) fn record_departed_rate(&mut self, rate_bps: f64) {
        self.departed += 1;
        self.rate_sum_bps += rate_bps;
        self.note_f64(rate_bps);
    }

    /// Digest of every decision made so far. Equal digests ⇔ equal
    /// trajectories (placements, queue verdicts, migrations, rates).
    pub fn trace_hash(&self) -> u64 {
        self.hash
    }

    /// Mean service rate over departed tenants (`None` before the first
    /// departure) — the quality headline `bench_online` compares between
    /// the greedy and random policies.
    pub fn mean_departed_rate_bps(&self) -> Option<f64> {
        if self.departed == 0 {
            None
        } else {
            Some(self.rate_sum_bps / self.departed as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_tracks_decision_stream() {
        let mut a = ServiceStats::default();
        let mut b = ServiceStats::default();
        assert_eq!(a.trace_hash(), b.trace_hash());
        a.note(1);
        a.note(2);
        b.note(1);
        assert_ne!(a.trace_hash(), b.trace_hash(), "prefixes differ");
        b.note(2);
        assert_eq!(a.trace_hash(), b.trace_hash(), "same stream, same digest");
        // Order matters.
        let mut c = ServiceStats::default();
        c.note(2);
        c.note(1);
        assert_ne!(a.trace_hash(), c.trace_hash());
    }

    #[test]
    fn trace_ring_keeps_the_most_recent_decisions() {
        let mut s = ServiceStats::with_trace_capacity(3);
        for i in 0..5u64 {
            s.decide(i, i, DecisionKind::Admit, i as f64);
        }
        let ring = s.decisions();
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.capacity(), 3);
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|d| d.at).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest first, last capacity kept"
        );
        // Before wrap-around the ring returns what it has.
        let mut t = ServiceStats::with_trace_capacity(8);
        t.decide(1, 0, DecisionKind::Queue, 0.0);
        assert_eq!(t.decisions().recent().len(), 1);
    }

    #[test]
    fn departed_rate_mean() {
        let mut s = ServiceStats::default();
        assert_eq!(s.mean_departed_rate_bps(), None);
        s.record_departed_rate(10.0);
        s.record_departed_rate(30.0);
        assert_eq!(s.mean_departed_rate_bps(), Some(20.0));
        assert_eq!(s.departed, 2);
    }
}
