//! Service counters, the deterministic trajectory digest, and the
//! per-decision trace ring.

use choreo_profile::TenantId;
use choreo_topology::Nanos;

/// What the service decided at one point of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Tenant admitted straight from its arrival.
    Admit,
    /// Tenant parked in the wait queue.
    Queue,
    /// Queued tenant admitted by a departure retry.
    QueueAdmit,
    /// Arrival rejected (queue full).
    Reject,
    /// Arrival ignored: the tenant id is already running or queued
    /// (at-least-once delivery hardening).
    Duplicate,
    /// Tenant departed.
    Depart,
    /// Running tenant changed its intensity.
    Intensity,
    /// Migration planner moved the tenant.
    Migrate,
    /// A cluster-wide migration pass ran (tenant is `u64::MAX`).
    MigrationPass,
    /// A link failed, degraded, drained or recovered (tenant is
    /// `u64::MAX`; value is the remaining capacity fraction on that
    /// link — 0 for failures, 1 for recoveries).
    NetworkEvent,
    /// The re-measurement pass found the tenant's epoch-over-epoch
    /// score moved more than the drift threshold (value is the
    /// relative error).
    DriftDetected,
    /// The tenant was moved by a pass it was *forced* into — drift or
    /// link failure routed it to the planner ahead of the cadence.
    ForcedMigration,
    /// Arrival rejected while the cluster had failed links: capacity
    /// was genuinely gone, not merely queued away.
    FailureReject,
}

impl DecisionKind {
    /// Stable snake_case name used by the JSONL trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Admit => "admit",
            DecisionKind::Queue => "queue",
            DecisionKind::QueueAdmit => "queue_admit",
            DecisionKind::Reject => "reject",
            DecisionKind::Duplicate => "duplicate",
            DecisionKind::Depart => "depart",
            DecisionKind::Intensity => "intensity",
            DecisionKind::Migrate => "migrate",
            DecisionKind::MigrationPass => "migration_pass",
            DecisionKind::NetworkEvent => "network_event",
            DecisionKind::DriftDetected => "drift_detected",
            DecisionKind::ForcedMigration => "forced_migration",
            DecisionKind::FailureReject => "failure_reject",
        }
    }
}

/// Why an arrival was turned away ([`Cause::Reject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The wait queue was at capacity.
    QueueFull,
    /// Links were down: the capacity was genuinely gone.
    LinksDown,
}

impl RejectReason {
    /// Stable snake_case name used by the JSONL trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::LinksDown => "links_down",
        }
    }
}

/// *Why* a decision fired — the threshold arithmetic behind it, carried
/// alongside the headline value so a trace reader can re-derive the
/// verdict. Purely trace metadata: causes live only in the
/// [`TraceRing`], never in the trajectory digest, so attaching them
/// cannot fork a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cause {
    /// Drift detection: the last-epoch relative error against the
    /// configured threshold it exceeded.
    Drift {
        /// Epoch-over-epoch relative error observed.
        error: f64,
        /// The drift threshold it was compared against.
        threshold: f64,
    },
    /// A migration cleared the hysteresis bar: the predicted gain
    /// against the minimum-improvement margin it had to beat.
    Hysteresis {
        /// Predicted-over-current score ratio of the executed move.
        gain: f64,
        /// The planner's `min_improvement` hysteresis margin.
        min_improvement: f64,
    },
    /// An arrival was rejected, and why.
    Reject(RejectReason),
}

impl Cause {
    fn write_json(self, out: &mut String) {
        match self {
            Cause::Drift { error, threshold } => {
                out.push_str(&format!(
                    "{{\"type\":\"drift\",\"error\":{},\"threshold\":{}}}",
                    json_f64(error),
                    json_f64(threshold)
                ));
            }
            Cause::Hysteresis { gain, min_improvement } => {
                out.push_str(&format!(
                    "{{\"type\":\"hysteresis\",\"gain\":{},\"min_improvement\":{}}}",
                    json_f64(gain),
                    json_f64(min_improvement)
                ));
            }
            Cause::Reject(reason) => {
                out.push_str(&format!(
                    "{{\"type\":\"reject\",\"reason\":\"{}\"}}",
                    reason.as_str()
                ));
            }
        }
    }
}

/// A finite float as a JSON number; non-finite values become `null`
/// (JSON has no Inf/NaN).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One entry of the decision trace: when, who, what, and the decision's
/// headline number (baseline score for placements, departure score for
/// departures, new intensity for load changes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Simulated (or service-clock) time of the decision.
    pub at: Nanos,
    /// Tenant the decision concerns (`u64::MAX` for cluster-wide ones).
    pub tenant: TenantId,
    /// What was decided.
    pub kind: DecisionKind,
    /// Decision-specific value (see the struct docs).
    pub value: f64,
    /// The threshold arithmetic behind the decision, where one exists
    /// (drift errors, hysteresis margins, rejection reasons).
    pub cause: Option<Cause>,
}

impl Decision {
    /// One-line JSON object: `at`, `tenant` (`null` for cluster-wide
    /// decisions), `kind`, `value` (`null` when non-finite) and `cause`
    /// (omitted when absent).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"at\":{},\"tenant\":", self.at);
        if self.tenant == u64::MAX {
            s.push_str("null");
        } else {
            s.push_str(&self.tenant.to_string());
        }
        s.push_str(&format!(
            ",\"kind\":\"{}\",\"value\":{}",
            self.kind.as_str(),
            json_f64(self.value)
        ));
        if let Some(c) = self.cause {
            s.push_str(",\"cause\":");
            c.write_json(&mut s);
        }
        s.push('}');
        s
    }
}

/// A bounded ring of the most recent [`Decision`]s — the service's
/// flight recorder. Contents are a pure function of the decision stream
/// (no wall-clock anywhere), so two bit-identical runs carry identical
/// rings.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRing {
    buf: Vec<Decision>,
    capacity: usize,
    /// All-time decisions pushed (`buf` keeps the last `capacity`).
    total: u64,
}

impl TraceRing {
    /// Ring keeping the last `capacity` decisions (at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing { buf: Vec::new(), capacity: capacity.max(1), total: 0 }
    }

    fn push(&mut self, d: Decision) {
        if self.buf.len() < self.capacity {
            self.buf.push(d);
        } else {
            self.buf[(self.total % self.capacity as u64) as usize] = d;
        }
        self.total += 1;
    }

    /// All-time decisions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained decisions, oldest first.
    pub fn recent(&self) -> Vec<Decision> {
        if self.buf.len() < self.capacity {
            return self.buf.clone();
        }
        let split = (self.total % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }

    /// The most recent `n` retained decisions as JSON Lines, oldest
    /// first, one [`Decision::to_json`] object per line (trailing
    /// newline included; empty string for an empty ring). The `/trace`
    /// endpoint and the `GetTrace` wire op render exactly this.
    pub fn to_jsonl(&self, n: usize) -> String {
        let recent = self.recent();
        let skip = recent.len().saturating_sub(n);
        let mut out = String::new();
        for d in &recent[skip..] {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }
}

/// Counters of one service run plus a running FNV-1a digest of every
/// decision the service makes (admissions with their placements, queue
/// verdicts, migrations, departure rates). Two runs with equal digests
/// made bit-identical decisions — the property the determinism suite and
/// `bench_online` check across repeats and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Tenant events consumed.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Tenants admitted straight from their arrival.
    pub admitted: u64,
    /// Tenants parked in the wait queue at arrival.
    pub queued: u64,
    /// Queued tenants later admitted by a departure retry.
    pub queue_admitted: u64,
    /// Arrivals rejected because the queue was full.
    pub rejected: u64,
    /// Departures that tore real state down (a running tenant's flows,
    /// or a queued tenant's wait-queue slot). A Depart for a tenant that
    /// was rejected at arrival is a digested no-op, not a departure.
    pub departures: u64,
    /// Intensity-change events applied to running tenants.
    pub intensity_changes: u64,
    /// Migration-planner passes executed.
    pub migration_passes: u64,
    /// Tenants actually moved by the planner.
    pub migrations: u64,
    /// Departed tenants with a recorded service rate.
    pub departed: u64,
    /// Arrivals ignored because the tenant id was already running or
    /// queued (duplicate delivery).
    pub duplicate_arrivals: u64,
    /// Network events consumed (failures, degradations, drains,
    /// recoveries).
    pub network_events: u64,
    /// Re-measurement passes executed.
    pub measurement_passes: u64,
    /// Drift detections: a tenant's epoch-over-epoch score moved more
    /// than the configured threshold.
    pub drift_detected: u64,
    /// Tenants moved by a forced (drift- or failure-triggered) pass.
    pub failure_migrations: u64,
    /// Arrivals rejected while links were down (capacity truly gone).
    pub failure_rejections: u64,
    rate_sum_bps: f64,
    hash: u64,
    trace: TraceRing,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::with_trace_capacity(256)
    }
}

impl ServiceStats {
    /// Fresh stats with a decision ring keeping the last `capacity`
    /// decisions.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        ServiceStats {
            events: 0,
            arrivals: 0,
            admitted: 0,
            queued: 0,
            queue_admitted: 0,
            rejected: 0,
            departures: 0,
            intensity_changes: 0,
            migration_passes: 0,
            migrations: 0,
            departed: 0,
            duplicate_arrivals: 0,
            network_events: 0,
            measurement_passes: 0,
            drift_detected: 0,
            failure_migrations: 0,
            failure_rejections: 0,
            rate_sum_bps: 0.0,
            hash: FNV_OFFSET,
            trace: TraceRing::new(capacity),
        }
    }

    /// Record one decision in the trace ring.
    pub(crate) fn decide(&mut self, at: Nanos, tenant: TenantId, kind: DecisionKind, value: f64) {
        self.trace.push(Decision { at, tenant, kind, value, cause: None });
    }

    /// [`ServiceStats::decide`] with the cause metadata attached. The
    /// cause rides only in the trace ring — it is never digested — so
    /// attaching it cannot fork a trajectory.
    pub(crate) fn decide_caused(
        &mut self,
        at: Nanos,
        tenant: TenantId,
        kind: DecisionKind,
        value: f64,
        cause: Cause,
    ) {
        self.trace.push(Decision { at, tenant, kind, value, cause: Some(cause) });
    }

    /// The decision flight recorder (most recent decisions, bounded).
    pub fn decisions(&self) -> &TraceRing {
        &self.trace
    }

    /// Fold a word into the trajectory digest.
    pub(crate) fn note(&mut self, word: u64) {
        let mut h = self.hash;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }

    /// Fold a float (by bit pattern) into the trajectory digest.
    pub(crate) fn note_f64(&mut self, x: f64) {
        self.note(x.to_bits());
    }

    /// Record a departed tenant's mean service rate.
    pub(crate) fn record_departed_rate(&mut self, rate_bps: f64) {
        self.departed += 1;
        self.rate_sum_bps += rate_bps;
        self.note_f64(rate_bps);
    }

    /// Digest of every decision made so far. Equal digests ⇔ equal
    /// trajectories (placements, queue verdicts, migrations, rates).
    pub fn trace_hash(&self) -> u64 {
        self.hash
    }

    /// Mean service rate over departed tenants (`None` before the first
    /// departure) — the quality headline `bench_online` compares between
    /// the greedy and random policies.
    pub fn mean_departed_rate_bps(&self) -> Option<f64> {
        if self.departed == 0 {
            None
        } else {
            Some(self.rate_sum_bps / self.departed as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_tracks_decision_stream() {
        let mut a = ServiceStats::default();
        let mut b = ServiceStats::default();
        assert_eq!(a.trace_hash(), b.trace_hash());
        a.note(1);
        a.note(2);
        b.note(1);
        assert_ne!(a.trace_hash(), b.trace_hash(), "prefixes differ");
        b.note(2);
        assert_eq!(a.trace_hash(), b.trace_hash(), "same stream, same digest");
        // Order matters.
        let mut c = ServiceStats::default();
        c.note(2);
        c.note(1);
        assert_ne!(a.trace_hash(), c.trace_hash());
    }

    #[test]
    fn trace_ring_keeps_the_most_recent_decisions() {
        let mut s = ServiceStats::with_trace_capacity(3);
        for i in 0..5u64 {
            s.decide(i, i, DecisionKind::Admit, i as f64);
        }
        let ring = s.decisions();
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.capacity(), 3);
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|d| d.at).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest first, last capacity kept"
        );
        // Before wrap-around the ring returns what it has.
        let mut t = ServiceStats::with_trace_capacity(8);
        t.decide(1, 0, DecisionKind::Queue, 0.0);
        assert_eq!(t.decisions().recent().len(), 1);
    }

    #[test]
    fn decisions_render_as_jsonl_with_causes() {
        let mut s = ServiceStats::with_trace_capacity(8);
        s.decide(5, 3, DecisionKind::Admit, 2.5);
        s.decide_caused(7, 4, DecisionKind::Reject, 0.0, Cause::Reject(RejectReason::QueueFull));
        s.decide_caused(
            9,
            4,
            DecisionKind::DriftDetected,
            0.125,
            Cause::Drift { error: 0.125, threshold: 0.06 },
        );
        s.decide(11, u64::MAX, DecisionKind::MigrationPass, f64::INFINITY);
        let jsonl = s.decisions().to_jsonl(16);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"at\":5,\"tenant\":3,\"kind\":\"admit\",\"value\":2.5}");
        assert_eq!(
            lines[1],
            "{\"at\":7,\"tenant\":4,\"kind\":\"reject\",\"value\":0,\
             \"cause\":{\"type\":\"reject\",\"reason\":\"queue_full\"}}"
        );
        assert_eq!(
            lines[2],
            "{\"at\":9,\"tenant\":4,\"kind\":\"drift_detected\",\"value\":0.125,\
             \"cause\":{\"type\":\"drift\",\"error\":0.125,\"threshold\":0.06}}"
        );
        assert_eq!(
            lines[3], "{\"at\":11,\"tenant\":null,\"kind\":\"migration_pass\",\"value\":null}",
            "cluster-wide tenant and non-finite value render as null"
        );
        // `n` bounds the export to the most recent decisions.
        let tail = s.decisions().to_jsonl(1);
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("migration_pass"), "{tail}");
        assert_eq!(s.decisions().to_jsonl(0), "");
    }

    #[test]
    fn hysteresis_cause_round_trips_through_json() {
        let d = Decision {
            at: 1,
            tenant: 2,
            kind: DecisionKind::Migrate,
            value: 3.0,
            cause: Some(Cause::Hysteresis { gain: 1.5, min_improvement: 0.1 }),
        };
        assert_eq!(
            d.to_json(),
            "{\"at\":1,\"tenant\":2,\"kind\":\"migrate\",\"value\":3,\
             \"cause\":{\"type\":\"hysteresis\",\"gain\":1.5,\"min_improvement\":0.1}}"
        );
    }

    #[test]
    fn departed_rate_mean() {
        let mut s = ServiceStats::default();
        assert_eq!(s.mean_departed_rate_bps(), None);
        s.record_departed_rate(10.0);
        s.record_departed_rate(30.0);
        assert_eq!(s.mean_departed_rate_bps(), Some(20.0));
        assert_eq!(s.departed, 2);
    }
}
