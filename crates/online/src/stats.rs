//! Service counters and the deterministic trajectory digest.

/// Counters of one service run plus a running FNV-1a digest of every
/// decision the service makes (admissions with their placements, queue
/// verdicts, migrations, departure rates). Two runs with equal digests
/// made bit-identical decisions — the property the determinism suite and
/// `bench_online` check across repeats and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Tenant events consumed.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Tenants admitted straight from their arrival.
    pub admitted: u64,
    /// Tenants parked in the wait queue at arrival.
    pub queued: u64,
    /// Queued tenants later admitted by a departure retry.
    pub queue_admitted: u64,
    /// Arrivals rejected because the queue was full.
    pub rejected: u64,
    /// Departure events (of admitted, queued or rejected tenants).
    pub departures: u64,
    /// Intensity-change events applied to running tenants.
    pub intensity_changes: u64,
    /// Migration-planner passes executed.
    pub migration_passes: u64,
    /// Tenants actually moved by the planner.
    pub migrations: u64,
    /// Departed tenants with a recorded service rate.
    pub departed: u64,
    rate_sum_bps: f64,
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            events: 0,
            arrivals: 0,
            admitted: 0,
            queued: 0,
            queue_admitted: 0,
            rejected: 0,
            departures: 0,
            intensity_changes: 0,
            migration_passes: 0,
            migrations: 0,
            departed: 0,
            rate_sum_bps: 0.0,
            hash: FNV_OFFSET,
        }
    }
}

impl ServiceStats {
    /// Fold a word into the trajectory digest.
    pub(crate) fn note(&mut self, word: u64) {
        let mut h = self.hash;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }

    /// Fold a float (by bit pattern) into the trajectory digest.
    pub(crate) fn note_f64(&mut self, x: f64) {
        self.note(x.to_bits());
    }

    /// Record a departed tenant's mean service rate.
    pub(crate) fn record_departed_rate(&mut self, rate_bps: f64) {
        self.departed += 1;
        self.rate_sum_bps += rate_bps;
        self.note_f64(rate_bps);
    }

    /// Digest of every decision made so far. Equal digests ⇔ equal
    /// trajectories (placements, queue verdicts, migrations, rates).
    pub fn trace_hash(&self) -> u64 {
        self.hash
    }

    /// Mean service rate over departed tenants (`None` before the first
    /// departure) — the quality headline `bench_online` compares between
    /// the greedy and random policies.
    pub fn mean_departed_rate_bps(&self) -> Option<f64> {
        if self.departed == 0 {
            None
        } else {
            Some(self.rate_sum_bps / self.departed as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_tracks_decision_stream() {
        let mut a = ServiceStats::default();
        let mut b = ServiceStats::default();
        assert_eq!(a.trace_hash(), b.trace_hash());
        a.note(1);
        a.note(2);
        b.note(1);
        assert_ne!(a.trace_hash(), b.trace_hash(), "prefixes differ");
        b.note(2);
        assert_eq!(a.trace_hash(), b.trace_hash(), "same stream, same digest");
        // Order matters.
        let mut c = ServiceStats::default();
        c.note(2);
        c.note(1);
        assert_ne!(a.trace_hash(), c.trace_hash());
    }

    #[test]
    fn departed_rate_mean() {
        let mut s = ServiceStats::default();
        assert_eq!(s.mean_departed_rate_bps(), None);
        s.record_departed_rate(10.0);
        s.record_departed_rate(30.0);
        assert_eq!(s.mean_departed_rate_bps(), Some(20.0));
        assert_eq!(s.departed, 2);
    }
}
