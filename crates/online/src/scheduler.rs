//! The always-on placement service.

use std::collections::VecDeque;

use choreo_flowsim::{FlowKey, FlowSim, SolverMode};
use choreo_measure::stability::StabilitySeries;
use choreo_metrics::Counter;
use choreo_place::greedy::GreedyPlacer;
use choreo_place::problem::{validate, Machines, NetworkLoad, Placement};
use choreo_place::RandomPlacer;
use choreo_profile::{
    AppProfile, NetworkEvent, NetworkEventKind, ServiceEvent, TenantEvent, TenantEventKind,
    TenantId,
};
use choreo_topology::{Nanos, NodeId, PodPartition};

use crate::builder::SchedulerBuilder;
use crate::config::{OnlineConfig, PlacementPolicy};
use crate::metrics::{PodLabel, ReasonLabel, ServiceMetrics, ShapeLabel, TenantBucket};
use crate::rater::LiveRater;
use crate::stats::{Cause, DecisionKind, RejectReason, ServiceStats};

/// One admitted tenant's live state.
#[derive(Debug)]
pub(crate) struct Tenant {
    /// The profiled application (full matrix; placement input).
    pub(crate) app: AppProfile,
    /// Task → global host index.
    pub(crate) placement: Placement,
    /// Connections per modeled transfer.
    pub(crate) intensity: u32,
    /// Modeled transfers `(src task, dst task)`, heaviest first — the
    /// top [`OnlineConfig::max_modeled_transfers`] of the matrix.
    pub(crate) transfers: Vec<(usize, usize)>,
    /// Live flow keys per modeled transfer; empty = co-located.
    pub(crate) flows: Vec<Vec<FlowKey>>,
    /// Mean service score right after the last (re)placement — the
    /// reference the migration planner measures degradation against.
    pub(crate) baseline: f64,
    /// When the tenant was last placed or moved (cooldown anchor).
    pub(crate) last_move_at: Nanos,
    /// Per-epoch service scores from the re-measurement pass (bounded
    /// by [`crate::DriftConfig::window`]) — the drift detector's
    /// [`StabilitySeries`] input. Reset on every (re)placement and
    /// intensity change: drift means the *network* moved under an
    /// unchanged tenant.
    pub(crate) epoch_scores: Vec<f64>,
}

/// The online multi-tenant placement service.
///
/// Consumes a time-ordered stream of [`TenantEvent`]s and keeps a live
/// [`FlowSim`] cluster placed well over time:
///
/// * **arrivals** are admitted through the configured placer against the
///   live network (batched what-if probes, never a snapshot), or parked
///   in a bounded FIFO wait queue when they do not fit;
/// * **departures** tear the tenant's flows down in one dirty window and
///   retry the wait queue against the freed capacity;
/// * **intensity changes** grow or shrink a tenant's per-transfer
///   connection count in place;
/// * a background **migration planner** (see [`crate::migrate`]) runs on
///   a simulated-time cadence and re-places degraded tenants under a
///   per-pass budget.
///
/// Everything is deterministic: the same event stream, seed and config
/// produce bit-identical trajectories ([`ServiceStats::trace_hash`]) for
/// any [`OnlineConfig::workers`] count, because warm and sharded solves
/// are bit-identical.
pub struct OnlineScheduler {
    pub(crate) sim: FlowSim,
    pub(crate) hosts: Vec<NodeId>,
    pub(crate) machines: Machines,
    pub(crate) load: NetworkLoad,
    pub(crate) tenants: Vec<Option<Tenant>>,
    /// Waiting tenants with the last intensity each requested while
    /// queued (applied at `QueueAdmit`, so an intensity change sent
    /// while waiting is not lost — the stream never resends it).
    queue: VecDeque<(TenantId, AppProfile, u32)>,
    pub(crate) cfg: OnlineConfig,
    random: RandomPlacer,
    pub(crate) stats: ServiceStats,
    pub(crate) metrics: ServiceMetrics,
    next_migration_at: Nanos,
    next_measure_at: Nanos,
    /// Links currently failed (`true` while a `LinkFail` is open) —
    /// distinguishes failure recoveries from drain/degrade ends and
    /// tells admission whether a rejection happened with capacity
    /// genuinely gone.
    failed_links: Vec<bool>,
    links_down: usize,
    active: usize,
    /// Scratch: candidate-host subset of the current placement attempt.
    cand: Vec<u32>,
    /// Pod partition of the topology — buckets the per-pod
    /// capacity-lost gauges (observational only).
    pods: PodPartition,
    /// Scratch: per-pod lost-capacity fractions.
    pod_lost: Vec<f64>,
    /// Cached `choreo_shape_events_total{shape=...}` series for this
    /// run's [`OnlineConfig::workload_shape`] — resolved once so the
    /// event hot path skips the family lookup.
    shape_events: Counter,
}

impl OnlineScheduler {
    /// [`SchedulerBuilder::build`]'s target — all construction funnels
    /// through here.
    pub(crate) fn from_builder(b: SchedulerBuilder) -> Self {
        let SchedulerBuilder { topo, routes, cfg, seed, metrics, solver_mode, trace_capacity } = b;
        assert!(cfg.candidate_hosts >= 2, "placement needs at least two candidate hosts");
        assert!(cfg.max_modeled_transfers >= 1, "model at least one transfer per tenant");
        if let Some(c) = cfg.migration.cadence {
            assert!(c > 0, "migration cadence must be positive");
        }
        if let Some(c) = cfg.drift.cadence {
            assert!(c > 0, "drift cadence must be positive");
            assert!(cfg.drift.window >= 2, "drift needs at least two epochs");
            assert!(cfg.drift.threshold > 0.0, "drift threshold must be positive");
        }
        let mut sim = FlowSim::new(topo.clone(), routes, cfg.loopback, seed);
        let mode = solver_mode.unwrap_or(if cfg.workers > 0 {
            SolverMode::sharded(cfg.workers)
        } else {
            SolverMode::Warm
        });
        sim.set_solver_mode(mode);
        let hosts = topo.hosts().to_vec();
        let n = hosts.len();
        let random_seed = match cfg.policy {
            PlacementPolicy::Random(s) => s,
            PlacementPolicy::Greedy => seed,
        };
        let next_migration_at = cfg.migration.cadence.unwrap_or(Nanos::MAX);
        let next_measure_at = cfg.drift.cadence.unwrap_or(Nanos::MAX);
        let n_links = topo.links().len();
        let pods = PodPartition::of(&topo);
        let shape_events = metrics.shape_events.get(&ShapeLabel(cfg.workload_shape.clone()));
        OnlineScheduler {
            sim,
            hosts,
            machines: Machines::uniform(n, cfg.cores_per_host),
            load: NetworkLoad::new(n),
            tenants: Vec::new(),
            queue: VecDeque::new(),
            cfg,
            random: RandomPlacer::new(random_seed),
            stats: ServiceStats::with_trace_capacity(trace_capacity),
            metrics,
            next_migration_at,
            next_measure_at,
            failed_links: vec![false; n_links],
            links_down: 0,
            active: 0,
            cand: Vec::new(),
            pods,
            pod_lost: Vec::new(),
            shape_events,
        }
    }

    // ------------------------------------------------------------ queries

    /// Counters and the trajectory digest.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.sim.now()
    }

    /// Tenants currently admitted and running.
    pub fn active_tenants(&self) -> usize {
        self.active
    }

    /// Tenants waiting for capacity.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The cluster's machine capacities (one VM per host).
    pub fn machines(&self) -> &Machines {
        &self.machines
    }

    /// The service configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// A running tenant's current placement (global host indices).
    pub fn tenant_placement(&self, tenant: TenantId) -> Option<&Placement> {
        self.tenants.get(tenant as usize)?.as_ref().map(|t| &t.placement)
    }

    /// A running tenant's current intensity (connections per modeled
    /// transfer). `None` for queued, rejected or departed tenants.
    pub fn tenant_intensity(&self, tenant: TenantId) -> Option<u32> {
        self.tenants.get(tenant as usize)?.as_ref().map(|t| t.intensity)
    }

    /// Direct access to the live simulator — tests and benches inject
    /// background traffic or inspect flows through this.
    pub fn sim_mut(&mut self) -> &mut FlowSim {
        &mut self.sim
    }

    /// The typed metric handles this scheduler records into.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// SLO attainment snapshot: of the running tenants with at least one
    /// networked transfer, how many currently score at least `fraction`
    /// of their post-placement baseline? Refreshes the
    /// `choreo_slo_attainment` gauge (1.0 when no tenant is networked)
    /// and the per-tenant-bucket `choreo_tenant_slo_attainment` family
    /// (only buckets that currently hold tenants), and returns
    /// `(met, total)`. Read-only with respect to the trajectory: scores
    /// come from the live allocation without touching the digest.
    pub fn slo_attainment(&mut self, fraction: f64) -> (u64, u64) {
        assert!((0.0..=1.0).contains(&fraction), "SLO fraction must be in [0, 1]");
        let snapshot: Vec<(TenantId, Vec<Vec<FlowKey>>, f64)> = self
            .tenants
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|t| (id as TenantId, t)))
            .filter(|(_, t)| t.flows.iter().any(|fl| !fl.is_empty()))
            .map(|(id, t)| (id, t.flows.clone(), t.baseline))
            .collect();
        let total = snapshot.len() as u64;
        let mut met = 0u64;
        let nb = crate::metrics::TENANT_BUCKETS as usize;
        let mut bucket_met = vec![0u64; nb];
        let mut bucket_total = vec![0u64; nb];
        for (id, flows, baseline) in &snapshot {
            let bucket = (id % crate::metrics::TENANT_BUCKETS) as usize;
            bucket_total[bucket] += 1;
            if self.service_score(flows) >= fraction * baseline {
                met += 1;
                bucket_met[bucket] += 1;
            }
        }
        let attainment = if total == 0 { 1.0 } else { met as f64 / total as f64 };
        self.metrics.slo_attainment.set(attainment);
        for b in 0..nb {
            if bucket_total[b] > 0 {
                let frac = bucket_met[b] as f64 / bucket_total[b] as f64;
                self.metrics.tenant_slo.get(&TenantBucket(b as u8)).set(frac);
            }
        }
        (met, total)
    }

    /// Mean current service score over the running tenants with at
    /// least one networked transfer (`None` when no tenant is
    /// networked). Like [`OnlineScheduler::slo_attainment`] this reads
    /// the live allocation without touching the digest — the bench's
    /// failure/recovery probe.
    pub fn mean_networked_score(&mut self) -> Option<f64> {
        let snapshot: Vec<Vec<Vec<FlowKey>>> = self
            .tenants
            .iter()
            .flatten()
            .filter(|t| t.flows.iter().any(|fl| !fl.is_empty()))
            .map(|t| t.flows.clone())
            .collect();
        if snapshot.is_empty() {
            return None;
        }
        let sum: f64 = snapshot.iter().map(|flows| self.service_score(flows)).sum();
        Some(sum / snapshot.len() as f64)
    }

    // ----------------------------------------------------------- the loop

    /// Advance simulated time to `at`, running any re-measurement and
    /// migration passes that come due on the way (measurement first at
    /// ties, so fresh drift verdicts feed the same instant's planner
    /// pass). [`OnlineScheduler::step`] does this itself; callers that
    /// want to time the dispatch alone (the latency percentiles in
    /// `bench_online`) advance first so the timed step is pure event
    /// handling.
    pub fn advance_to(&mut self, at: Nanos) {
        let at = at.max(self.sim.now());
        loop {
            let next = self.next_measure_at.min(self.next_migration_at);
            if next > at {
                break;
            }
            self.sim.run_until(next);
            if self.next_measure_at <= self.next_migration_at {
                self.measurement_pass();
                self.next_measure_at = next + self.cfg.drift.cadence.expect("cadence set");
            } else {
                self.migration_pass();
                self.next_migration_at = next + self.cfg.migration.cadence.expect("cadence set");
            }
        }
        self.sim.run_until(at);
    }

    /// Consume one tenant event: advance simulated time (running any
    /// migration passes that come due on the way), then dispatch.
    pub fn step(&mut self, ev: &TenantEvent) {
        self.advance_to(ev.at);
        self.stats.events += 1;
        self.metrics.events.inc();
        self.shape_events.inc();
        self.stats.note(ev.tenant << 8 | event_code(&ev.kind));
        match &ev.kind {
            TenantEventKind::Arrive { app } => self.arrive(ev.tenant, (**app).clone()),
            TenantEventKind::SetIntensity { intensity } => {
                self.set_intensity(ev.tenant, *intensity)
            }
            TenantEventKind::Depart => self.depart(ev.tenant),
        }
        self.metrics.queue_depth.set(self.queue.len() as f64);
        self.metrics.active_tenants.set(self.active as f64);
    }

    /// Consume one event of a merged tenant + network stream.
    pub fn service_step(&mut self, ev: &ServiceEvent) {
        match ev {
            ServiceEvent::Tenant(t) => self.step(t),
            ServiceEvent::Network(n) => self.network_step(n),
        }
    }

    /// Consume a whole stream.
    pub fn run<I: IntoIterator<Item = TenantEvent>>(&mut self, events: I) {
        for ev in events {
            self.step(&ev);
        }
    }

    /// Consume one network event: advance simulated time, apply the
    /// capacity change to the live simulator (one dirty-window
    /// perturbation — the next reallocation re-solves bit-identical to
    /// cold at the new capacities), and, on a failure, route every
    /// tenant the failure degraded into a forced migration pass ahead
    /// of the cadence. Fully digested: fault-laden runs stay
    /// bit-reproducible across repeats and solver worker counts.
    pub fn network_step(&mut self, ev: &NetworkEvent) {
        self.advance_to(ev.at);
        self.stats.network_events += 1;
        self.metrics.link_events.inc();
        self.shape_events.inc();
        self.stats.note(0x4e); // 'N'
        self.stats.note((ev.link as u64) << 8 | network_event_code(&ev.kind));
        let fraction = match ev.kind {
            NetworkEventKind::LinkDegrade { fraction } => {
                self.sim.degrade_link(ev.link, fraction);
                fraction
            }
            NetworkEventKind::DrainStart { fraction } => {
                self.sim.degrade_link(ev.link, fraction);
                fraction
            }
            NetworkEventKind::LinkFail => {
                self.sim.fail_link(ev.link);
                let was = std::mem::replace(&mut self.failed_links[ev.link as usize], true);
                if !was {
                    self.links_down += 1;
                }
                0.0
            }
            NetworkEventKind::LinkRecover | NetworkEventKind::DrainEnd => {
                self.sim.recover_link(ev.link);
                let was = std::mem::replace(&mut self.failed_links[ev.link as usize], false);
                if was {
                    self.links_down -= 1;
                }
                1.0
            }
        };
        self.stats.note_f64(fraction);
        let now = self.sim.now();
        self.stats.decide(now, TenantId::MAX, DecisionKind::NetworkEvent, fraction);
        self.metrics.capacity_lost.set(self.sim.capacity_lost_fraction());
        // Per-pod breakdown: network events are rare, so refreshing the
        // whole family here is cheap. The trailing bucket is the spine.
        let mut pod_lost = std::mem::take(&mut self.pod_lost);
        self.sim.pod_capacity_lost_fractions(&self.pods, &mut pod_lost);
        for (bucket, &lost) in pod_lost.iter().enumerate() {
            let pod = if bucket == self.pods.n_pods() { u32::MAX } else { bucket as u32 };
            self.metrics.pod_capacity_lost.get(&PodLabel(pod)).set(lost);
        }
        self.pod_lost = pod_lost;
        if matches!(ev.kind, NetworkEventKind::LinkFail) {
            // Failure-stranded tenants must not wait out the cadence:
            // force everyone the failure actually degraded into a pass
            // now. The planner's hysteresis still gates each move, so a
            // tenant with no better place to go stays put.
            let forced = self.degraded_tenant_ids();
            if !forced.is_empty() {
                self.migration_pass_forced(&forced);
            }
        }
    }

    /// Running networked tenants currently scoring below the planner's
    /// degraded fraction of their baseline, in id order.
    fn degraded_tenant_ids(&mut self) -> Vec<TenantId> {
        let frac = self.cfg.migration.degraded_fraction;
        let mut out = Vec::new();
        for id in 0..self.tenants.len() {
            let Some(t) = self.tenants[id].as_ref() else { continue };
            if t.flows.iter().all(|fl| fl.is_empty()) {
                continue;
            }
            let flows = t.flows.clone();
            let baseline = t.baseline;
            if self.service_score(&flows) < frac * baseline {
                out.push(id as TenantId);
            }
        }
        out
    }

    /// One re-measurement epoch: refresh every running networked
    /// tenant's service score into its [`StabilitySeries`] and compare
    /// against the previous epoch. A relative error above the drift
    /// threshold (the paper's §4.1 stability envelope — more change
    /// than a healthy cloud path shows) marks the tenant drifted; all
    /// drifted tenants are routed into a forced migration pass
    /// immediately, ahead of the planner's own cadence.
    fn measurement_pass(&mut self) {
        self.stats.measurement_passes += 1;
        self.stats.note(0x50); // 'P'
        let interval = self.cfg.drift.cadence.expect("measurement runs only with a cadence");
        let threshold = self.cfg.drift.threshold;
        let window = self.cfg.drift.window;
        let now = self.sim.now();
        let mut drifted: Vec<(TenantId, f64)> = Vec::new();
        for id in 0..self.tenants.len() {
            let Some(t) = self.tenants[id].as_ref() else { continue };
            if t.flows.iter().all(|fl| fl.is_empty()) {
                continue; // co-located: no network under it to drift
            }
            let flows = t.flows.clone();
            let score = self.service_score(&flows);
            self.stats.note_f64(score);
            let t = self.tenants[id].as_mut().expect("still running");
            t.epoch_scores.push(score);
            if t.epoch_scores.len() > window {
                t.epoch_scores.remove(0);
            }
            if t.epoch_scores.len() >= 2 {
                let series = StabilitySeries::new(interval, t.epoch_scores.clone());
                if let Some(&err) = series.relative_errors(interval).last() {
                    if err > threshold {
                        drifted.push((id as TenantId, err));
                    }
                }
            }
        }
        for &(id, err) in &drifted {
            self.stats.drift_detected += 1;
            self.metrics.drift_detected.inc();
            self.stats.note(0x64); // 'd'
            self.stats.note(id);
            self.stats.decide_caused(
                now,
                id,
                DecisionKind::DriftDetected,
                err,
                Cause::Drift { error: err, threshold },
            );
        }
        if !drifted.is_empty() {
            let forced: Vec<TenantId> = drifted.iter().map(|&(id, _)| id).collect();
            self.migration_pass_forced(&forced);
        }
    }

    /// Run a migration pass right now regardless of the cadence clock
    /// (tests and externally-scheduled deployments).
    pub fn force_migration_pass(&mut self) {
        self.migration_pass();
    }

    // ---------------------------------------------------------- admission

    fn arrive(&mut self, id: TenantId, app: AppProfile) {
        self.stats.arrivals += 1;
        // At-least-once delivery hardening: a transport that duplicates
        // an Arrive frame must not overwrite a live tenant's state (that
        // would leak its flows and corrupt the CPU ledger). The guard
        // digests a distinct byte so fault-free trajectories are
        // untouched while duplicated ones stay deterministic.
        let live = self.tenants.get(id as usize).is_some_and(Option::is_some);
        if live || self.queue.iter().any(|(t, _, _)| *t == id) {
            self.stats.duplicate_arrivals += 1;
            self.metrics.duplicate_arrivals.inc();
            self.metrics.admissions.get(&ReasonLabel("duplicate")).inc();
            self.stats.note(0x58); // 'X'
            let now = self.sim.now();
            self.stats.decide(now, id, DecisionKind::Duplicate, 0.0);
            return;
        }
        if self.tenants.len() <= id as usize {
            self.tenants.resize_with(id as usize + 1, || None);
        }
        match self.try_place(&app, self.cfg.policy) {
            Some(placement) => {
                self.admit(id, app, placement, DecisionKind::Admit, 1);
                self.stats.admitted += 1;
                self.metrics.admitted.inc();
                self.metrics.admissions.get(&ReasonLabel("admitted")).inc();
            }
            None if self.queue.len() < self.cfg.queue_capacity => {
                self.stats.queued += 1;
                self.metrics.queued.inc();
                self.metrics.admissions.get(&ReasonLabel("queued")).inc();
                self.stats.note(0x51); // 'Q'
                let now = self.sim.now();
                self.stats.decide(now, id, DecisionKind::Queue, self.queue.len() as f64);
                self.queue.push_back((id, app, 1));
            }
            None => {
                self.stats.rejected += 1;
                self.metrics.rejected.inc();
                // Count *why* capacity was gone: a rejection during a
                // failure epoch is the network's fault, not sizing's.
                if self.links_down > 0 {
                    self.stats.failure_rejections += 1;
                    self.metrics.failure_rejections.inc();
                    self.metrics.admissions.get(&ReasonLabel("rejected_failure")).inc();
                    self.stats.note(0x72); // 'r'
                    let now = self.sim.now();
                    self.stats.decide_caused(
                        now,
                        id,
                        DecisionKind::FailureReject,
                        0.0,
                        Cause::Reject(RejectReason::LinksDown),
                    );
                } else {
                    self.metrics.admissions.get(&ReasonLabel("rejected_queue_full")).inc();
                    self.stats.note(0x52); // 'R'
                    let now = self.sim.now();
                    self.stats.decide_caused(
                        now,
                        id,
                        DecisionKind::Reject,
                        0.0,
                        Cause::Reject(RejectReason::QueueFull),
                    );
                }
            }
        }
    }

    /// Try to place `app` within the best candidate-host subset. Returns
    /// a **global** placement, or `None` when the placer finds no
    /// feasible assignment there.
    pub(crate) fn try_place(
        &mut self,
        app: &AppProfile,
        policy: PlacementPolicy,
    ) -> Option<Placement> {
        // Wall-clock timing is observational only (the latency histogram
        // never feeds the digest), so it cannot perturb determinism.
        let t0 = std::time::Instant::now();
        let placed = self.try_place_inner(app, policy);
        self.metrics.placement_latency.observe(t0.elapsed().as_secs_f64());
        placed
    }

    fn try_place_inner(&mut self, app: &AppProfile, policy: PlacementPolicy) -> Option<Placement> {
        let n = self.machines.len();
        let k = self.cfg.candidate_hosts.min(n);
        // The k hosts with the most free CPU, ties broken on host index:
        // deterministic, and concentrates placement where there is room.
        let mut order = std::mem::take(&mut self.cand);
        order.clear();
        order.extend(0..n as u32);
        let free = |h: u32| self.machines.cpu[h as usize] - self.load.cpu_used[h as usize];
        order.sort_unstable_by(|&a, &b| {
            free(b).partial_cmp(&free(a)).expect("finite").then(a.cmp(&b))
        });
        order.truncate(k);
        self.cand = order;
        let sub_machines =
            Machines { cpu: self.cand.iter().map(|&h| self.machines.cpu[h as usize]).collect() };
        let local = match policy {
            PlacementPolicy::Greedy => {
                // CPU comes from the global ledger; network counters stay
                // zero: the live probes already price in every running
                // flow, and stacking the transfer counters on top would
                // double-count traffic (the `Choreo::place_live`
                // contract).
                let mut sub_load = NetworkLoad::new(k);
                for (i, &h) in self.cand.iter().enumerate() {
                    sub_load.cpu_used[i] = self.load.cpu_used[h as usize];
                }
                let mut rater = LiveRater::new(&mut self.sim, &self.hosts, &self.cand);
                GreedyPlacer.place_with_rater(app, &sub_machines, &mut rater, &sub_load).ok()?
            }
            PlacementPolicy::Random(_) => {
                // The network-oblivious baseline reads nothing from live
                // probes, so the projected sub-load is the right view.
                self.random.place(app, &sub_machines, &self.load.project(&self.cand)).ok()?
            }
        };
        let cand = &self.cand;
        Some(Placement { assignment: local.assignment.iter().map(|&v| cand[v as usize]).collect() })
    }

    /// Register an admitted tenant: account its load, start its modeled
    /// transfers as live flows, and record its baseline service score.
    /// `kind` tells the trace ring whether this was a fresh admission or
    /// a queue retry; `intensity` is 1 for fresh arrivals and the
    /// stashed last-requested value for queue retries.
    fn admit(
        &mut self,
        id: TenantId,
        app: AppProfile,
        placement: Placement,
        kind: DecisionKind,
        intensity: u32,
    ) {
        debug_assert!(validate(&app, &self.machines, &placement).is_ok());
        self.load.apply(&app, &placement);
        let transfers: Vec<(usize, usize)> = app
            .matrix
            .transfers_desc()
            .into_iter()
            .filter(|&(_, _, b)| b > 0)
            .take(self.cfg.max_modeled_transfers)
            .map(|(i, j, _)| (i, j))
            .collect();
        let intensity = intensity.max(1);
        let flows = self.start_transfer_flows(id, &placement, &transfers, intensity);
        let baseline = self.service_score(&flows);
        self.stats.note(0x41); // 'A'
        self.stats.note(intensity as u64);
        for &h in &placement.assignment {
            self.stats.note(h as u64);
        }
        self.stats.note_f64(baseline);
        let now = self.sim.now();
        self.stats.decide(now, id, kind, baseline);
        self.tenants[id as usize] = Some(Tenant {
            app,
            placement,
            intensity,
            transfers,
            flows,
            baseline,
            last_move_at: now,
            epoch_scores: Vec::new(),
        });
        self.active += 1;
    }

    /// Start `intensity` unbounded flows per network transfer (co-located
    /// transfers get none) — all in one arena dirty window.
    pub(crate) fn start_transfer_flows(
        &mut self,
        id: TenantId,
        placement: &Placement,
        transfers: &[(usize, usize)],
        intensity: u32,
    ) -> Vec<Vec<FlowKey>> {
        transfers
            .iter()
            .map(|&(i, j)| {
                let (a, b) = (placement.assignment[i], placement.assignment[j]);
                if a == b {
                    return Vec::new();
                }
                let (src, dst) = (self.hosts[a as usize], self.hosts[b as usize]);
                (0..intensity).map(|_| self.sim.start_flow_now(src, dst, None, None, id)).collect()
            })
            .collect()
    }

    /// The service-quality score of a flow layout: mean over modeled
    /// transfers of the transfer's mean per-connection rate, with
    /// co-located transfers counting the loopback rate. One metric for
    /// baselines, degradation checks, move predictions and the departed-
    /// tenant quality headline.
    pub(crate) fn service_score(&mut self, flows: &[Vec<FlowKey>]) -> f64 {
        let loopback = self.cfg.loopback.rate_bps;
        if flows.is_empty() {
            return loopback;
        }
        let mut sum = 0.0;
        for fl in flows {
            if fl.is_empty() {
                sum += loopback;
            } else {
                let s: f64 = fl.iter().map(|&k| self.sim.rate_bps(k)).sum();
                sum += s / fl.len() as f64;
            }
        }
        sum / flows.len() as f64
    }

    // ---------------------------------------------------------- lifecycle

    fn depart(&mut self, id: TenantId) {
        if let Some(pos) = self.queue.iter().position(|(t, _, _)| *t == id) {
            // Left before capacity freed up.
            self.stats.departures += 1;
            self.metrics.departures.inc();
            self.queue.remove(pos);
            self.stats.note(0x44); // 'D'
            let now = self.sim.now();
            self.stats.decide(now, id, DecisionKind::Depart, 0.0);
            return;
        }
        let Some(t) = self.tenants.get_mut(id as usize).and_then(Option::take) else {
            // Rejected at arrival (or never seen): nothing was admitted,
            // so nothing departs. Counting it would overstate departures
            // against admissions; digest a distinct byte so hostile
            // streams still replay bit-identically.
            self.stats.note(0x6e); // 'n' — no-op departure
            return;
        };
        // Only a real teardown (queued-drop above, or this live drop)
        // counts as a departure.
        self.stats.departures += 1;
        self.metrics.departures.inc();
        self.active -= 1;
        let score = self.service_score(&t.flows);
        self.stats.record_departed_rate(score);
        let now = self.sim.now();
        self.stats.decide(now, id, DecisionKind::Depart, score);
        let keys: Vec<FlowKey> = t.flows.iter().flatten().copied().collect();
        self.sim.stop_flows_now(&keys);
        // The departure score above was the last read of these flows;
        // release the records so steady-state memory tracks concurrent
        // tenants, not all-time arrivals.
        self.sim.release_flows(&keys);
        self.load.remove(&t.app, &t.placement);
        self.retry_queue();
    }

    /// Departure freed capacity: re-try every waiting tenant in FIFO
    /// order, admitting each one that now fits (no head-of-line
    /// blocking — a large tenant at the front cannot starve small ones
    /// behind it).
    fn retry_queue(&mut self) {
        let mut i = 0;
        while i < self.queue.len() {
            let (id, app, intensity) = self.queue[i].clone();
            if let Some(placement) = self.try_place(&app, self.cfg.policy) {
                self.queue.remove(i);
                self.admit(id, app, placement, DecisionKind::QueueAdmit, intensity);
                self.stats.queue_admitted += 1;
                self.metrics.queue_admitted.inc();
                self.metrics.admissions.get(&ReasonLabel("queue_admitted")).inc();
            } else {
                i += 1;
            }
        }
    }

    fn set_intensity(&mut self, id: TenantId, intensity: u32) {
        debug_assert!(intensity >= 1);
        let running = self.tenants.get(id as usize).is_some_and(Option::is_some);
        if !running {
            // Still waiting in the queue? Stash the request with the
            // entry — `QueueAdmit` applies the last value asked for, so
            // a change sent while queued is not silently lost. (The
            // stash is digested but not counted: no flows changed.)
            if let Some(entry) = self.queue.iter_mut().find(|(t, _, _)| *t == id) {
                if entry.2 != intensity {
                    entry.2 = intensity;
                    self.stats.note(0x69); // 'i' — queued-intensity stash
                    self.stats.note(intensity as u64);
                }
            }
            return; // rejected or departed otherwise
        }
        let slot = self.tenants.get_mut(id as usize).expect("checked");
        let t = slot.as_mut().expect("checked");
        if t.intensity == intensity {
            return;
        }
        self.stats.intensity_changes += 1;
        self.metrics.intensity_changes.inc();
        self.stats.note(0x49); // 'I'
        self.stats.note(intensity as u64);
        if intensity > t.intensity {
            let extra = intensity - t.intensity;
            // Grow every network transfer by `extra` connections.
            let grow: Vec<(usize, u32, u32)> = t
                .flows
                .iter()
                .enumerate()
                .filter(|(_, fl)| !fl.is_empty())
                .map(|(idx, _)| {
                    let (i, j) = t.transfers[idx];
                    (idx, t.placement.assignment[i], t.placement.assignment[j])
                })
                .collect();
            for (idx, a, b) in grow {
                let (src, dst) = (self.hosts[a as usize], self.hosts[b as usize]);
                for _ in 0..extra {
                    let key = self.sim.start_flow_now(src, dst, None, None, id);
                    t.flows[idx].push(key);
                }
            }
        } else {
            // Shrink every network transfer down to `intensity`
            // connections, torn down in one dirty window.
            let mut drop_keys = Vec::new();
            for fl in t.flows.iter_mut().filter(|fl| !fl.is_empty()) {
                while fl.len() > intensity as usize {
                    drop_keys.push(fl.pop().expect("non-empty"));
                }
            }
            self.sim.stop_flows_now(&drop_keys);
            self.sim.release_flows(&drop_keys);
        }
        // Normalize the degradation baseline for the self-induced share
        // change: k connections on the same bottleneck each get ~1/k of
        // what one got, so the per-connection reference scales by
        // old/new. Without this a tenant that just tripled its own
        // connection count would read as degraded and burn a pointless
        // migration; scaling (rather than re-measuring) keeps genuine
        // degradation accumulated since placement visible to the
        // planner.
        t.baseline *= t.intensity as f64 / intensity as f64;
        t.intensity = intensity;
        // The per-connection score just changed by the tenant's own
        // hand; a fresh drift series keeps self-induced sharing from
        // reading as network drift.
        t.epoch_scores.clear();
        let baseline = t.baseline;
        self.stats.note_f64(baseline);
        let now = self.sim.now();
        self.stats.decide(now, id, DecisionKind::Intensity, intensity as f64);
    }

    // --------------------------------------------------------- invariants

    /// Check the service's safety invariants (test hook):
    ///
    /// * the CPU ledger matches the running tenants exactly and never
    ///   exceeds any host's capacity;
    /// * every running placement still validates against the machines;
    /// * the wait queue respects its bound;
    /// * flow bookkeeping matches the simulator's active-flow count.
    ///
    /// Panics on violation.
    pub fn check_invariants(&self) {
        let n = self.machines.len();
        let mut cpu = vec![0.0f64; n];
        let mut live_flows = 0usize;
        let mut active = 0usize;
        for t in self.tenants.iter().flatten() {
            active += 1;
            validate(&t.app, &self.machines, &t.placement).expect("running placement is valid");
            for (task, &vm) in t.placement.assignment.iter().enumerate() {
                cpu[vm as usize] += t.app.cpu[task];
            }
            for fl in &t.flows {
                live_flows += fl.len();
                if !fl.is_empty() {
                    assert_eq!(fl.len(), t.intensity as usize, "intensity matches flow count");
                }
                for &k in fl {
                    assert!(
                        matches!(self.sim.status(k), choreo_flowsim::FlowStatus::Active),
                        "tenant flow {k:?} not active"
                    );
                }
            }
        }
        assert_eq!(active, self.active, "active-tenant counter in sync");
        for (h, &used) in cpu.iter().enumerate() {
            assert!(
                (used - self.load.cpu_used[h]).abs() < 1e-6,
                "cpu ledger drift on host {h}: {used} vs {}",
                self.load.cpu_used[h]
            );
            assert!(
                used <= self.machines.cpu[h] + 1e-6,
                "host {h} over capacity: {used} > {}",
                self.machines.cpu[h]
            );
        }
        assert!(self.queue.len() <= self.cfg.queue_capacity, "queue within bound");
        // The sim may carry extra (test-injected or background) flows,
        // but never fewer than the tenants' bookkeeping says.
        assert!(
            live_flows <= self.sim.active_flows(),
            "flow bookkeeping out of sync: {live_flows} tenant flows, {} in the sim",
            self.sim.active_flows()
        );
    }
}

fn event_code(kind: &TenantEventKind) -> u64 {
    match kind {
        TenantEventKind::Arrive { .. } => 1,
        TenantEventKind::SetIntensity { .. } => 2,
        TenantEventKind::Depart => 3,
    }
}

fn network_event_code(kind: &NetworkEventKind) -> u64 {
    match kind {
        NetworkEventKind::LinkDegrade { .. } => 1,
        NetworkEventKind::LinkFail => 2,
        NetworkEventKind::LinkRecover => 3,
        NetworkEventKind::DrainStart { .. } => 4,
        NetworkEventKind::DrainEnd => 5,
    }
}
