//! Typed metric handles the scheduler and migration planner record into.
//!
//! [`ServiceMetrics`] is the bridge between the deterministic service
//! loop and a [`choreo_metrics::Registry`]: the scheduler holds cheap
//! atomic handles on its hot path and a metrics endpoint renders the
//! registry. Metrics are write-only from the service's point of view —
//! nothing in the trajectory reads them back — so wall-clock-derived
//! samples (the placement-latency histogram) never perturb a run's
//! trace digest, and a scheduler built without a registry
//! ([`ServiceMetrics::detached`]) records into unexported handles at the
//! same (negligible) cost.

use choreo_metrics::{Counter, Family, Gauge, Histogram, LabelSet, Registry};

/// Placement-latency histogram bounds: 1 µs … ~0.5 s, ×2 per bucket.
fn latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(20);
    let mut b = 1e-6;
    for _ in 0..20 {
        bounds.push(b);
        b *= 2.0;
    }
    bounds
}

/// Tenant-id buckets on the per-tenant SLO gauge family: tenant `id`
/// lands in bucket `id % TENANT_BUCKETS`. A fixed modulus keeps the
/// series count independent of how many tenants a run admits.
pub const TENANT_BUCKETS: u64 = 8;

/// `reason="..."` label on `choreo_admissions_total`: one series per
/// admission outcome (`admitted`, `queued`, `queue_admitted`,
/// `rejected_queue_full`, `rejected_failure`, `duplicate`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReasonLabel(pub &'static str);

impl LabelSet for ReasonLabel {
    fn label_names() -> &'static [&'static str] {
        &["reason"]
    }

    fn label_values(&self) -> Vec<String> {
        vec![self.0.to_string()]
    }
}

/// `tenant_bucket="..."` label on `choreo_tenant_slo_attainment`; see
/// [`TENANT_BUCKETS`] for the bucketing rule.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TenantBucket(pub u8);

impl LabelSet for TenantBucket {
    fn label_names() -> &'static [&'static str] {
        &["tenant_bucket"]
    }

    fn label_values(&self) -> Vec<String> {
        vec![self.0.to_string()]
    }
}

/// `pod="..."` label on `choreo_pod_capacity_lost_fraction`. Pods are
/// numbered as in `choreo_topology::PodPartition`; `u32::MAX` is the
/// shared spine (core links and pod uplinks) and renders as `"spine"`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PodLabel(pub u32);

impl LabelSet for PodLabel {
    fn label_names() -> &'static [&'static str] {
        &["pod"]
    }

    fn label_values(&self) -> Vec<String> {
        if self.0 == u32::MAX {
            vec!["spine".to_string()]
        } else {
            vec![self.0.to_string()]
        }
    }
}

/// `shape="..."` label on `choreo_shape_events_total`: the workload
/// shape the run was driven with (`OnlineConfig::workload_shape`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ShapeLabel(pub String);

impl LabelSet for ShapeLabel {
    fn label_names() -> &'static [&'static str] {
        &["shape"]
    }

    fn label_values(&self) -> Vec<String> {
        vec![self.0.clone()]
    }
}

/// The service's instrument set. Fields are the hooks the scheduler and
/// migration planner record into; see [`ServiceMetrics::registered`] for
/// the exported names.
#[derive(Clone, Debug)]
pub struct ServiceMetrics {
    /// Tenant events consumed (`choreo_service_events_total`).
    pub events: Counter,
    /// Tenants admitted straight from arrival (`choreo_admitted_total`).
    pub admitted: Counter,
    /// Tenants parked in the wait queue (`choreo_queued_total`).
    pub queued: Counter,
    /// Queued tenants admitted by a departure retry
    /// (`choreo_queue_admitted_total`).
    pub queue_admitted: Counter,
    /// Arrivals rejected with the queue full (`choreo_rejected_total`).
    pub rejected: Counter,
    /// Duplicate arrivals ignored (`choreo_duplicate_arrivals_total`).
    pub duplicate_arrivals: Counter,
    /// Departures that tore real state down (`choreo_departures_total`);
    /// Depart events for rejected tenants are no-ops and not counted.
    pub departures: Counter,
    /// Intensity changes applied (`choreo_intensity_changes_total`).
    pub intensity_changes: Counter,
    /// Migration-planner passes (`choreo_migration_passes_total`).
    pub migration_passes: Counter,
    /// Tenants moved by the planner (`choreo_migrations_total`).
    pub migrations: Counter,
    /// Tenants waiting for capacity right now (`choreo_queue_depth`).
    pub queue_depth: Gauge,
    /// Tenants admitted and running (`choreo_active_tenants`).
    pub active_tenants: Gauge,
    /// Wall-clock seconds per admission placement attempt
    /// (`choreo_placement_latency_seconds`).
    pub placement_latency: Histogram,
    /// Fraction of running networked tenants at or above the SLO
    /// fraction of their post-placement baseline score
    /// (`choreo_slo_attainment`, refreshed by
    /// [`crate::OnlineScheduler::slo_attainment`]).
    pub slo_attainment: Gauge,
    /// Network events applied — failures, degradations, drains,
    /// recoveries (`choreo_link_events_total`).
    pub link_events: Counter,
    /// Drift detections by the re-measurement pass
    /// (`choreo_drift_detected_total`).
    pub drift_detected: Counter,
    /// Tenants moved by a forced, drift/failure-triggered pass
    /// (`choreo_failure_migrations_total`).
    pub failure_migrations: Counter,
    /// Arrivals rejected while links were down
    /// (`choreo_failure_rejected_total`).
    pub failure_rejections: Counter,
    /// Fraction of the cluster's nominal directed link capacity
    /// currently lost to failures, degradations and drains
    /// (`choreo_capacity_lost_fraction`).
    pub capacity_lost: Gauge,
    /// Admission outcomes by reason (`choreo_admissions_total`): the
    /// labeled view of the admitted/queued/rejected/... counters above.
    pub admissions: Family<ReasonLabel, Counter>,
    /// Per-tenant-bucket SLO attainment
    /// (`choreo_tenant_slo_attainment`), refreshed alongside the
    /// cluster-wide [`ServiceMetrics::slo_attainment`] gauge.
    pub tenant_slo: Family<TenantBucket, Gauge>,
    /// Per-pod capacity lost to failures, degradations and drains
    /// (`choreo_pod_capacity_lost_fraction`); the `pod="spine"` series
    /// covers core links and pod uplinks.
    pub pod_capacity_lost: Family<PodLabel, Gauge>,
    /// Tenant events consumed, by workload shape
    /// (`choreo_shape_events_total`).
    pub shape_events: Family<ShapeLabel, Counter>,
}

impl ServiceMetrics {
    /// Handles not exported anywhere — the default for library and
    /// bench use.
    pub fn detached() -> ServiceMetrics {
        ServiceMetrics {
            events: Counter::new(),
            admitted: Counter::new(),
            queued: Counter::new(),
            queue_admitted: Counter::new(),
            rejected: Counter::new(),
            duplicate_arrivals: Counter::new(),
            departures: Counter::new(),
            intensity_changes: Counter::new(),
            migration_passes: Counter::new(),
            migrations: Counter::new(),
            queue_depth: Gauge::new(),
            active_tenants: Gauge::new(),
            placement_latency: Histogram::new(latency_bounds()),
            slo_attainment: Gauge::new(),
            link_events: Counter::new(),
            drift_detected: Counter::new(),
            failure_migrations: Counter::new(),
            failure_rejections: Counter::new(),
            capacity_lost: Gauge::new(),
            admissions: Family::new(8, Counter::new),
            tenant_slo: Family::new(TENANT_BUCKETS as usize, Gauge::new),
            pod_capacity_lost: Family::new(64, Gauge::new),
            shape_events: Family::new(16, Counter::new),
        }
    }

    /// Handles registered on `registry` under the `choreo_` name family,
    /// ready for text exposition.
    pub fn registered(registry: &Registry) -> ServiceMetrics {
        ServiceMetrics {
            events: registry.counter("choreo_service_events_total", "Tenant events consumed"),
            admitted: registry
                .counter("choreo_admitted_total", "Tenants admitted straight from arrival"),
            queued: registry.counter("choreo_queued_total", "Tenants parked in the wait queue"),
            queue_admitted: registry.counter(
                "choreo_queue_admitted_total",
                "Queued tenants admitted by a departure retry",
            ),
            rejected: registry
                .counter("choreo_rejected_total", "Arrivals rejected with the queue full"),
            duplicate_arrivals: registry.counter(
                "choreo_duplicate_arrivals_total",
                "Arrivals ignored because the tenant was already live",
            ),
            departures: registry
                .counter("choreo_departures_total", "Departures that tore real state down"),
            intensity_changes: registry
                .counter("choreo_intensity_changes_total", "Intensity changes applied"),
            migration_passes: registry
                .counter("choreo_migration_passes_total", "Migration planner passes"),
            migrations: registry
                .counter("choreo_migrations_total", "Tenants moved by the migration planner"),
            queue_depth: registry.gauge("choreo_queue_depth", "Tenants waiting for capacity"),
            active_tenants: registry.gauge("choreo_active_tenants", "Tenants admitted and running"),
            placement_latency: registry.histogram(
                "choreo_placement_latency_seconds",
                "Wall-clock seconds per admission placement attempt",
                latency_bounds(),
            ),
            slo_attainment: registry.gauge(
                "choreo_slo_attainment",
                "Fraction of running networked tenants meeting their SLO",
            ),
            link_events: registry.counter(
                "choreo_link_events_total",
                "Network events applied (failures, degradations, drains, recoveries)",
            ),
            drift_detected: registry.counter(
                "choreo_drift_detected_total",
                "Drift detections by the re-measurement pass",
            ),
            failure_migrations: registry.counter(
                "choreo_failure_migrations_total",
                "Tenants moved by a forced, drift/failure-triggered pass",
            ),
            failure_rejections: registry.counter(
                "choreo_failure_rejected_total",
                "Arrivals rejected while links were down",
            ),
            capacity_lost: registry.gauge(
                "choreo_capacity_lost_fraction",
                "Fraction of nominal link capacity lost to failures and drains",
            ),
            admissions: registry.counter_family(
                "choreo_admissions_total",
                "Admission outcomes by reason",
                8,
            ),
            tenant_slo: registry.gauge_family(
                "choreo_tenant_slo_attainment",
                "Fraction of running networked tenants meeting their SLO, by tenant-id bucket",
                TENANT_BUCKETS as usize,
            ),
            pod_capacity_lost: registry.gauge_family(
                "choreo_pod_capacity_lost_fraction",
                "Fraction of nominal link capacity lost to failures and drains, by pod",
                64,
            ),
            shape_events: registry.counter_family(
                "choreo_shape_events_total",
                "Tenant events consumed, by workload shape",
                16,
            ),
        }
    }
}
