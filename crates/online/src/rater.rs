//! Candidate rating against the **live** simulated network.
//!
//! [`LiveRater`] is the online service's analogue of
//! [`choreo_place::BackendRater`]: the greedy placer's per-transfer
//! candidate batches go straight to [`FlowSim::probe_rates`] — one
//! batched what-if replay of the committed allocation's freeze-round log
//! per transfer, observably side-effect-free, never a snapshot. Probes
//! price in every flow currently running, so the placer must combine
//! them with a **network-idle** load (CPU only): stacking transfer
//! counters on top of live probes would double-count running traffic
//! (the same contract as `Choreo::place_live`).

use choreo_flowsim::{FlowSim, HoseId};
use choreo_measure::RateModel;
use choreo_place::rater::CandidateRater;
use choreo_topology::NodeId;

/// Rater over a candidate-host subset of a live [`FlowSim`].
///
/// Local VM index `i` is global host `subset[i]`; pairs are probed
/// through the engine's batched what-if path under the pipe model
/// (probes return per-connection fair shares, which is what the pipe
/// sharing rule divides).
pub struct LiveRater<'a> {
    sim: &'a mut FlowSim,
    hosts: &'a [NodeId],
    subset: &'a [u32],
    probes: Vec<(NodeId, NodeId, Option<HoseId>)>,
}

impl<'a> LiveRater<'a> {
    /// Rater over `subset` (global host indices) of `sim`'s network.
    pub fn new(sim: &'a mut FlowSim, hosts: &'a [NodeId], subset: &'a [u32]) -> Self {
        LiveRater { sim, hosts, subset, probes: Vec::new() }
    }
}

impl CandidateRater for LiveRater<'_> {
    fn n_vms(&self) -> usize {
        self.subset.len()
    }

    fn model(&self) -> RateModel {
        RateModel::Pipe
    }

    fn path_rates(&mut self, pairs: &[(u32, u32)], out: &mut Vec<f64>) {
        self.probes.clear();
        self.probes.extend(pairs.iter().map(|&(m, n)| {
            let src = self.hosts[self.subset[m as usize] as usize];
            let dst = self.hosts[self.subset[n as usize] as usize];
            (src, dst, None)
        }));
        self.sim.probe_rates(&self.probes, out);
    }

    fn hose_rate(&mut self, _vm: u32) -> f64 {
        unreachable!("the online scheduler rates candidates under the pipe model")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choreo_topology::{dumbbell, LinkSpec, RouteTable, GBIT, MICROS};
    use std::sync::Arc;

    #[test]
    fn live_rater_maps_subset_to_hosts_and_batches() {
        let t = Arc::new(dumbbell(
            2,
            LinkSpec::new(GBIT, 5 * MICROS),
            LinkSpec::new(GBIT, 20 * MICROS),
        ));
        let r = Arc::new(RouteTable::new(&t));
        let mut sim = FlowSim::new(t.clone(), r, LinkSpec::new(4.2 * GBIT, 20 * MICROS), 1);
        let hosts = t.hosts().to_vec();
        // Load the shared link with one background flow.
        sim.start_flow_now(hosts[1], hosts[3], None, None, 9);
        let subset = [0u32, 2];
        let mut rater = LiveRater::new(&mut sim, &hosts, &subset);
        assert_eq!(rater.n_vms(), 2);
        assert_eq!(rater.model(), RateModel::Pipe);
        let mut out = Vec::new();
        // Local pair (0, 1) = hosts 0 -> 2: crosses the loaded shared
        // link, so the probe sees the halved fair share; the reverse
        // direction rides the other (idle) directed capacity.
        rater.path_rates(&[(0, 1), (1, 0)], &mut out);
        assert_eq!(out.len(), 2);
        assert!((out[0] - 0.5e9).abs() < 1.0, "shares with background: {}", out[0]);
        assert!((out[1] - 1e9).abs() < 1.0, "reverse direction is idle: {}", out[1]);
    }
}
