//! The background migration planner: §2.4's per-application
//! re-evaluation generalized into a cluster-wide pass.
//!
//! `core/migrate.rs` decides for **one** application, from a snapshot,
//! whether moving its remaining bytes beats staying. The online service
//! generalizes the shape: on a configurable cadence it scans **every**
//! running tenant for degradation (current service score vs the score
//! recorded right after its last placement), prices candidate moves with
//! the engine's batched what-if probes (one [`FlowSim::probe_rates`]
//! batch per candidate — no snapshot, no perturbation), keeps only moves
//! that clear the shared hysteresis rule
//! ([`choreo::migrate::improves_enough`]), and executes the best
//! improvements under a per-pass migration budget.
//!
//! Two properties keep the pass safe and calm:
//!
//! * **no flapping** — degradation is measured against a band
//!   (`degraded_fraction` below baseline to arm, strictly more than
//!   `min_improvement` predicted gain to fire) and every move re-arms a
//!   per-tenant cooldown;
//! * **determinism** — tenants are scanned in id order, moves are ranked
//!   by `(gain, id)`, and each executed move re-checks CPU feasibility
//!   against the post-move ledger, so a pass is a pure function of the
//!   service state.
//!
//! Probes price candidate paths while the tenant's current flows are
//! still running, so predicted gains are conservative: the freed
//! capacity at the old location is not credited to the new one.
//!
//! [`FlowSim::probe_rates`]: choreo_flowsim::FlowSim::probe_rates

use choreo::migrate::improves_enough;
use choreo_place::problem::Placement;
use choreo_profile::TenantId;

use crate::config::PlacementPolicy;
use crate::scheduler::OnlineScheduler;
use crate::stats::{Cause, DecisionKind};

/// A move the planner decided to execute.
#[derive(Debug, Clone, PartialEq)]
struct PlannedMove {
    /// Predicted score over current score (> 1).
    gain: f64,
    tenant: TenantId,
    placement: Placement,
    /// The tenant was forced into this pass (drift or link failure)
    /// rather than picked up by the cadence scan.
    forced: bool,
}

impl OnlineScheduler {
    /// One cluster-wide planning pass; called from the event loop on the
    /// cadence clock (or [`OnlineScheduler::force_migration_pass`]).
    pub(crate) fn migration_pass(&mut self) {
        self.migration_pass_inner(&[]);
    }

    /// A pass with `forced` tenants scanned ahead of the normal rules:
    /// drift detections and link failures route tenants here, bypassing
    /// the cooldown and the degraded-fraction arm (the network already
    /// gave the evidence). The move itself still has to clear the
    /// hysteresis bar — forcing a tenant in never forces it to move.
    pub(crate) fn migration_pass_forced(&mut self, forced: &[TenantId]) {
        self.migration_pass_inner(forced);
    }

    fn migration_pass_inner(&mut self, forced: &[TenantId]) {
        self.stats.migration_passes += 1;
        self.metrics.migration_passes.inc();
        self.stats.note(0x4d); // 'M'
        let now = self.sim.now();
        self.stats.decide(now, TenantId::MAX, DecisionKind::MigrationPass, forced.len() as f64);
        let cooldown = self.cfg.migration.cooldown;
        let degraded_fraction = self.cfg.migration.degraded_fraction;
        let min_improvement = self.cfg.migration.min_improvement;
        let is_forced = |id: TenantId| forced.binary_search(&id).is_ok();
        debug_assert!(forced.windows(2).all(|w| w[0] < w[1]), "forced ids sorted, unique");

        // Phase 1: scan for degraded tenants, in id order, carrying each
        // one's current score into phase 2 (probes and placement
        // searches are side-effect-free, so the score cannot drift
        // between the phases). Forced tenants skip the cooldown and the
        // degradation arm.
        let mut degraded: Vec<(TenantId, f64)> = Vec::new();
        for id in 0..self.tenants.len() {
            let Some(t) = self.tenants[id].as_ref() else { continue };
            let forced_in = is_forced(id as TenantId);
            if !forced_in && now.saturating_sub(t.last_move_at) < cooldown {
                continue;
            }
            if t.flows.iter().all(|fl| fl.is_empty()) {
                continue; // fully co-located: nothing the network can degrade
            }
            let flows = t.flows.clone();
            let baseline = t.baseline;
            let current = self.service_score(&flows);
            if forced_in || current < degraded_fraction * baseline {
                degraded.push((id as TenantId, current));
            }
        }

        // Phase 2: price a candidate move per degraded tenant. The
        // tenant's own CPU is released while searching so it may reuse
        // its current hosts in a better arrangement.
        let mut moves: Vec<PlannedMove> = Vec::new();
        for (id, current) in degraded {
            let (app, old_placement, transfers, intensity) = {
                let t = self.tenants[id as usize].as_ref().expect("degraded are running");
                (t.app.clone(), t.placement.clone(), t.transfers.clone(), t.intensity)
            };
            self.load.remove(&app, &old_placement);
            let candidate = self.try_place(&app, PlacementPolicy::Greedy);
            self.load.apply(&app, &old_placement);
            let Some(candidate) = candidate else { continue };
            if candidate == old_placement {
                continue;
            }
            let predicted = self.predicted_score(&transfers, &candidate, intensity);
            // Same hysteresis rule as §2.4, on reciprocal rates (costs).
            if improves_enough(1.0 / current, 1.0 / predicted, min_improvement) {
                moves.push(PlannedMove {
                    gain: predicted / current,
                    tenant: id,
                    placement: candidate,
                    forced: is_forced(id),
                });
            }
        }

        // Phase 3: execute the best moves under the budget. Ranked by
        // (gain desc, id asc) — deterministic; CPU feasibility is
        // re-checked per move because earlier moves reshape the ledger.
        moves.sort_by(|a, b| {
            b.gain.partial_cmp(&a.gain).expect("finite gains").then(a.tenant.cmp(&b.tenant))
        });
        for m in moves.into_iter().take(self.cfg.migration.budget) {
            self.execute_move(m.tenant, m.placement, m.forced, m.gain);
        }
    }

    /// Predicted service score of `transfers` under `placement`: one
    /// batched what-if probe for the network transfers, the loopback
    /// rate for co-located ones.
    ///
    /// The probe prices a **single** hypothetical connection, but the
    /// tenant will run `intensity` connections per transfer that mostly
    /// share the same bottleneck, so the per-connection prediction is
    /// `probe / intensity` — exact when the candidate path is otherwise
    /// idle, conservative when it is shared. Without the division a
    /// self-bottlenecked intensity-k tenant would see a phantom k× gain
    /// on every idle path and migrate for nothing.
    fn predicted_score(
        &mut self,
        transfers: &[(usize, usize)],
        placement: &Placement,
        intensity: u32,
    ) -> f64 {
        let loopback = self.cfg.loopback.rate_bps;
        if transfers.is_empty() {
            return loopback;
        }
        let mut probes = Vec::with_capacity(transfers.len());
        for &(i, j) in transfers {
            let (a, b) = (placement.assignment[i], placement.assignment[j]);
            if a != b {
                probes.push((self.hosts[a as usize], self.hosts[b as usize], None));
            }
        }
        let mut rates = Vec::new();
        self.sim.probe_rates(&probes, &mut rates);
        let colocated = transfers.len() - probes.len();
        let sum: f64 =
            rates.iter().map(|r| r / intensity as f64).sum::<f64>() + colocated as f64 * loopback;
        sum / transfers.len() as f64
    }

    /// Tear the tenant down at its old placement and bring it up at the
    /// new one (same modeled transfers, same intensity), refreshing its
    /// baseline and cooldown. Skips the move if the new placement no
    /// longer fits the CPU ledger (an earlier move this pass took the
    /// room). `forced` marks drift/failure-triggered moves for the
    /// trace and the `choreo_failure_migrations_total` counter. `gain`
    /// is the predicted-over-current ratio that cleared the hysteresis
    /// bar — recorded as the move's [`Cause`] in the trace ring.
    fn execute_move(&mut self, id: TenantId, placement: Placement, forced: bool, gain: f64) {
        let t = self.tenants[id as usize].take().expect("planned moves target running tenants");
        self.load.remove(&t.app, &t.placement);
        let fits = {
            let mut extra = vec![0.0f64; self.machines.len()];
            for (task, &vm) in placement.assignment.iter().enumerate() {
                extra[vm as usize] += t.app.cpu[task];
            }
            extra
                .iter()
                .zip(&self.load.cpu_used)
                .zip(&self.machines.cpu)
                .all(|((e, used), cap)| used + e <= cap + 1e-9)
        };
        if !fits {
            self.load.apply(&t.app, &t.placement);
            self.tenants[id as usize] = Some(t);
            return;
        }
        let old_keys: Vec<_> = t.flows.iter().flatten().copied().collect();
        self.sim.stop_flows_now(&old_keys);
        // Nothing reads the torn-down flows again; recycle their records.
        self.sim.release_flows(&old_keys);
        self.load.apply(&t.app, &placement);
        let flows = self.start_transfer_flows(id, &placement, &t.transfers, t.intensity);
        let baseline = self.service_score(&flows);
        self.stats.migrations += 1;
        self.metrics.migrations.inc();
        self.stats.note(0x56); // 'V' — a move
        self.stats.note(id);
        for &h in &placement.assignment {
            self.stats.note(h as u64);
        }
        self.stats.note_f64(baseline);
        let now = self.sim.now();
        let cause = Cause::Hysteresis { gain, min_improvement: self.cfg.migration.min_improvement };
        if forced {
            self.stats.failure_migrations += 1;
            self.metrics.failure_migrations.inc();
            self.stats.note(0x46); // 'F' — the move was forced
            self.stats.decide_caused(now, id, DecisionKind::ForcedMigration, baseline, cause);
        } else {
            self.stats.decide_caused(now, id, DecisionKind::Migrate, baseline, cause);
        }
        self.tenants[id as usize] = Some(crate::scheduler::Tenant {
            app: t.app,
            placement,
            intensity: t.intensity,
            transfers: t.transfers,
            flows,
            baseline,
            last_move_at: now,
            epoch_scores: Vec::new(),
        });
    }
}
