//! Construction of the online scheduler.
//!
//! [`SchedulerBuilder`] replaces the old positional
//! `OnlineScheduler::new(topo, routes, cfg, seed)` constructor: the
//! growing option set (metrics registry, solver mode, trace capacity)
//! made positional arguments unreadable at call sites and impossible to
//! extend without breaking every caller. Topology and routes are the
//! only required inputs; everything else has the same defaults the old
//! constructor hard-coded.

use std::sync::Arc;

use choreo_flowsim::SolverMode;
use choreo_metrics::Registry;
use choreo_topology::{RouteTable, Topology};

use crate::config::OnlineConfig;
use crate::metrics::ServiceMetrics;
use crate::scheduler::OnlineScheduler;

/// Builder for [`OnlineScheduler`].
///
/// ```
/// use choreo_online::{OnlineConfig, SchedulerBuilder};
/// use choreo_topology::{MultiRootedTreeSpec, RouteTable};
/// use std::sync::Arc;
///
/// let topo = Arc::new(MultiRootedTreeSpec::default().build());
/// let routes = Arc::new(RouteTable::new(&topo));
/// let sched = SchedulerBuilder::new(topo, routes)
///     .config(OnlineConfig::default())
///     .seed(7)
///     .build();
/// assert_eq!(sched.active_tenants(), 0);
/// ```
pub struct SchedulerBuilder {
    pub(crate) topo: Arc<Topology>,
    pub(crate) routes: Arc<RouteTable>,
    pub(crate) cfg: OnlineConfig,
    pub(crate) seed: u64,
    pub(crate) metrics: ServiceMetrics,
    pub(crate) solver_mode: Option<SolverMode>,
    pub(crate) trace_capacity: usize,
}

impl SchedulerBuilder {
    /// Builder over `topo` with one VM per host, default config, seed 0,
    /// detached metrics and a solver mode derived from
    /// [`OnlineConfig::workers`].
    pub fn new(topo: Arc<Topology>, routes: Arc<RouteTable>) -> SchedulerBuilder {
        SchedulerBuilder {
            topo,
            routes,
            cfg: OnlineConfig::default(),
            seed: 0,
            metrics: ServiceMetrics::detached(),
            solver_mode: None,
            trace_capacity: 256,
        }
    }

    /// Service configuration (policy, queue bound, migration cadence…).
    pub fn config(mut self, cfg: OnlineConfig) -> SchedulerBuilder {
        self.cfg = cfg;
        self
    }

    /// Seed for the simulator's ECMP draws and the random-placement
    /// baseline.
    pub fn seed(mut self, seed: u64) -> SchedulerBuilder {
        self.seed = seed;
        self
    }

    /// Record service metrics into `registry` (exposed via its text
    /// exposition). Without this the scheduler records into detached
    /// handles.
    pub fn metrics_registry(mut self, registry: &Registry) -> SchedulerBuilder {
        self.metrics = ServiceMetrics::registered(registry);
        self
    }

    /// Use an explicit pre-built instrument set (shared with another
    /// component, or registered under different names).
    pub fn metrics(mut self, metrics: ServiceMetrics) -> SchedulerBuilder {
        self.metrics = metrics;
        self
    }

    /// Route reallocation through an explicit [`SolverMode`] — including
    /// handing over a warmed-up [`choreo_flowsim::ShardedSolver`] pool
    /// via [`SolverMode::Sharded`]. Defaults to
    /// `SolverMode::sharded(cfg.workers)` when `cfg.workers > 0`, warm
    /// solves otherwise.
    pub fn solver_mode(mut self, mode: SolverMode) -> SchedulerBuilder {
        self.solver_mode = Some(mode);
        self
    }

    /// Decisions retained by the flight-recorder ring
    /// ([`crate::ServiceStats::decisions`]); default 256.
    pub fn trace_capacity(mut self, capacity: usize) -> SchedulerBuilder {
        self.trace_capacity = capacity;
        self
    }

    /// Build the scheduler.
    pub fn build(self) -> OnlineScheduler {
        OnlineScheduler::from_builder(self)
    }
}
