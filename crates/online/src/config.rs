//! Service configuration.

use choreo_topology::{LinkSpec, Nanos, GBIT, MICROS, SECS};

/// Which placer admission uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Algorithm 1 over live batched what-if probes (the service's point).
    Greedy,
    /// Seeded network-oblivious random placement — the §6 baseline the
    /// online bench compares tenant rates against.
    Random(u64),
}

/// Knobs of the background migration planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Run a cluster-wide re-placement pass every this much simulated
    /// time (`None` disables the planner).
    pub cadence: Option<Nanos>,
    /// A tenant counts as degraded when its current mean per-flow rate
    /// drops strictly below this fraction of the rate it saw right after
    /// its last placement.
    pub degraded_fraction: f64,
    /// Cost-side hysteresis threshold of the shared
    /// `choreo::migrate::improves_enough` rule, applied to reciprocal
    /// rates: a move fires only when
    /// `predicted > current / (1 − min_improvement)` — e.g. the default
    /// `0.10` (the paper's §2.4 threshold) demands a ≥ 11 % predicted
    /// rate gain, `0.25` a ≥ 33 % gain, `0.5` a 2× gain. The band
    /// between `degraded_fraction` and this bar is what keeps tenants
    /// from flapping.
    pub min_improvement: f64,
    /// Maximum number of tenants moved per pass — migration is not free,
    /// so each pass executes only the best improvements.
    pub budget: usize,
    /// A tenant placed or moved less than this long ago is left alone.
    pub cooldown: Nanos,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            cadence: Some(10 * SECS),
            degraded_fraction: 0.85,
            min_improvement: 0.10,
            budget: 2,
            cooldown: 20 * SECS,
        }
    }
}

/// Knobs of the re-measurement cadence and drift detector.
///
/// The paper measures every path each epoch and leans on the §4.1
/// stability result (≤ 6 % relative error for 95 % of paths over a
/// 30-minute horizon) to measure *infrequently*. The online service
/// inverts that: it re-measures each running tenant's service score on a
/// cadence, keeps the per-epoch scores in a
/// [`choreo_measure::stability::StabilitySeries`], and treats a
/// last-epoch relative error **above** the paper's envelope as network
/// drift — something moved underneath the tenant (congestion, a
/// degraded or recovered link), so the tenant is routed into the
/// migration planner ahead of its normal cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Re-measure every running networked tenant on this simulated-time
    /// cadence (`None` disables drift detection).
    pub cadence: Option<Nanos>,
    /// A tenant counts as drifted when its last-epoch relative error
    /// `|cur − prev| / cur` exceeds this. Default `0.06` — the paper's
    /// §4.1 stability envelope: larger epoch-over-epoch error than the
    /// measured cloud baseline means the network changed, not noise.
    pub threshold: f64,
    /// Epoch scores retained per tenant (the drift series window).
    pub window: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { cadence: Some(30 * SECS), threshold: 0.06, window: 8 }
    }
}

/// Configuration of an [`crate::OnlineScheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// CPU cores per host (§6.1: four-core machines).
    pub cores_per_host: f64,
    /// Capacity/delay model for co-located traffic (the paper's
    /// ≈4 Gbit/s same-host paths).
    pub loopback: LinkSpec,
    /// Placement works within the `candidate_hosts` hosts with the most
    /// free CPU (deterministic tie-break on host index) instead of the
    /// whole cluster: candidate probing is one batched what-if solve per
    /// transfer, so the subset bounds per-arrival latency at large host
    /// counts the way power-of-k-choices schedulers do.
    pub candidate_hosts: usize,
    /// Each tenant's heaviest this-many transfers become live simulated
    /// flows; placement still sees the full matrix. Bounds per-tenant
    /// flow count for all-to-all patterns.
    pub max_modeled_transfers: usize,
    /// Arrivals that do not fit wait in a FIFO queue of at most this many
    /// tenants (retried on departures); beyond it they are rejected.
    pub queue_capacity: usize,
    /// Admission placer.
    pub policy: PlacementPolicy,
    /// Worker threads for the sharded solve path (`0` = warm solves
    /// only). Sharded and warm solves are bit-identical, so this changes
    /// wall-clock only, never the trajectory.
    pub workers: usize,
    /// Background migration planner knobs.
    pub migration: MigrationConfig,
    /// Re-measurement cadence and drift detector knobs.
    pub drift: DriftConfig,
    /// Label value for the `choreo_shape_events_total{shape=...}`
    /// counter — names the workload shape driving this run (e.g.
    /// `"nominal"`, `"diurnal"`, `"hostile"`). Observational only: it
    /// tags metric series and never influences the trajectory.
    pub workload_shape: String,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            cores_per_host: 4.0,
            loopback: LinkSpec::new(4.2 * GBIT, 20 * MICROS),
            candidate_hosts: 16,
            max_modeled_transfers: 12,
            queue_capacity: 64,
            policy: PlacementPolicy::Greedy,
            workers: 0,
            migration: MigrationConfig::default(),
            drift: DriftConfig::default(),
            workload_shape: "nominal".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OnlineConfig::default();
        assert_eq!(c.policy, PlacementPolicy::Greedy);
        assert!(c.candidate_hosts >= 2 && c.queue_capacity > 0);
        assert!(c.migration.degraded_fraction < 1.0);
        assert!(c.migration.min_improvement > 0.0);
        assert!(c.drift.threshold > 0.0 && c.drift.window >= 2);
    }
}
