//! Facade crate for the Choreo reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can depend on a single package. Library users should
//! depend on the individual `choreo-*` crates (or the `choreo` orchestrator
//! crate) directly.

pub use choreo;
pub use choreo_cloudlab as cloudlab;
pub use choreo_flowsim as flowsim;
pub use choreo_lp as lp;
pub use choreo_measure as measure;
pub use choreo_metrics as metrics;
pub use choreo_netsim as netsim;
pub use choreo_online as online;
pub use choreo_place as place;
pub use choreo_profile as profile;
pub use choreo_service as service;
pub use choreo_topology as topology;
pub use choreo_wire as wire;
