//! Cross-crate integration: the full measure → profile → place → run
//! pipeline on emulated providers.

use choreo_repro::choreo::{runner, Choreo, ChoreoConfig, PlacerKind};
use choreo_repro::cloudlab::{Cloud, ProviderProfile};
use choreo_repro::measure::RateModel;
use choreo_repro::place::problem::Machines;
use choreo_repro::profile::{AppProfile, TrafficMatrix, WorkloadGen, WorkloadGenConfig};
use choreo_repro::topology::SECS;

fn quiet(mut p: ProviderProfile) -> ProviderProfile {
    p.background.pairs = 0;
    p.measurement_noise = 0.0;
    p.colocate_prob = 0.0;
    p
}

#[test]
fn full_pipeline_on_each_provider() {
    for profile in [
        ProviderProfile::ec2_2013(false),
        ProviderProfile::ec2_2013(true),
        ProviderProfile::rackspace(),
        ProviderProfile::ec2_2012('a'),
    ] {
        let name = profile.name.clone();
        let mut cloud = Cloud::new(profile, 99);
        cloud.allocate(8);
        let mut fc = cloud.flow_cloud(1);
        let mut orch = Choreo::new(Machines::uniform(8, 4.0), ChoreoConfig::default());
        let snap = orch.measure(&mut fc).clone();
        assert_eq!(snap.n_vms(), 8, "{name}");
        assert!(snap.path_rates().iter().all(|r| *r > 0.0), "{name}");
        let mut gen = WorkloadGen::new(
            WorkloadGenConfig { tasks_min: 4, tasks_max: 6, bytes_mu: 18.0, ..Default::default() },
            3,
        );
        let app = gen.next_app();
        let placement = orch.place(&app).expect("fits");
        let rt = runner::run_app(&mut fc, &mut orch, &app, &placement);
        assert!(rt < 600 * SECS, "{name}: runtime {rt}");
        assert!(orch.running().is_empty(), "{name}: load released");
    }
}

#[test]
fn live_batched_placement_works_without_a_snapshot() {
    // `place_live` probes each transfer's candidate set through the
    // backend's batched what-if path — no prior `measure()` needed.
    let mut cloud = Cloud::new(quiet(ProviderProfile::ec2_2013(false)), 42);
    cloud.allocate(6);
    let mut fc = cloud.flow_cloud(4);
    let mut orch = Choreo::new(Machines::uniform(6, 4.0), ChoreoConfig::default());
    let mut m = TrafficMatrix::zeros(3);
    m.set(0, 1, 200_000_000);
    m.set(1, 2, 50_000_000);
    let app = AppProfile::new("live", vec![1.0; 3], m, 0);
    let placement = orch.place_live(&app, &mut fc).expect("fits");
    assert!(choreo_repro::place::problem::validate(&app, orch.machines(), &placement).is_ok());
    let rt = runner::run_app(&mut fc, &mut orch, &app, &placement);
    assert!(rt < 600 * SECS, "live placement runs to completion: {rt}");
    assert!(orch.running().is_empty(), "load released");
}

#[test]
fn choreo_beats_baselines_on_average_across_many_apps() {
    // Statistical version of the §6.2 claim, small scale for CI: over a
    // dozen experiments, the mean speed-up vs every baseline is positive.
    let n_vms = 8;
    let machines = Machines::uniform(n_vms, 4.0);
    let mut gen = WorkloadGen::new(
        WorkloadGenConfig { tasks_min: 4, tasks_max: 7, bytes_mu: 19.5, ..Default::default() },
        77,
    );
    let mut sums = [0.0f64; 3];
    let mut n = 0;
    for exp in 0..12u64 {
        let app = gen.next_app();
        if app.cpu.iter().sum::<f64>() > n_vms as f64 * 4.0 {
            continue;
        }
        let profile = ProviderProfile::ec2_2013(exp % 2 == 0);
        let run_with = |placer: PlacerKind| -> Option<f64> {
            let mut cloud = Cloud::new(profile.clone(), 400 + exp);
            cloud.allocate(n_vms);
            let mut fc = cloud.flow_cloud(5);
            let mut orch =
                Choreo::new(machines.clone(), ChoreoConfig { placer, ..Default::default() });
            orch.measure(&mut fc);
            let p = orch.place(&app).ok()?;
            Some(runner::run_app(&mut fc, &mut orch, &app, &p) as f64)
        };
        let Some(t_choreo) = run_with(PlacerKind::Greedy) else { continue };
        let baselines = [
            run_with(PlacerKind::Random(exp)),
            run_with(PlacerKind::RoundRobin),
            run_with(PlacerKind::MinMachines),
        ];
        if baselines.iter().any(|b| b.is_none()) {
            continue;
        }
        for (i, b) in baselines.iter().enumerate() {
            let tb = b.unwrap();
            if tb > 0.0 {
                sums[i] += 100.0 * (tb - t_choreo) / tb;
            }
        }
        n += 1;
    }
    assert!(n >= 8, "enough comparable experiments: {n}");
    for (i, name) in ["random", "round-robin", "min-machines"].iter().enumerate() {
        let mean = sums[i] / n as f64;
        assert!(mean > 0.0, "mean speed-up vs {name} should be positive, got {mean:.1}%");
    }
}

#[test]
fn sequences_complete_and_release_all_load() {
    let mut cloud = Cloud::new(quiet(ProviderProfile::ec2_2013(false)), 4);
    cloud.allocate(10);
    let mut fc = cloud.flow_cloud(9);
    let mut orch = Choreo::new(Machines::uniform(10, 4.0), ChoreoConfig::default());
    let apps = WorkloadGen::new(
        WorkloadGenConfig {
            tasks_min: 3,
            tasks_max: 5,
            bytes_mu: 18.5,
            mean_interarrival: 3 * SECS,
            ..Default::default()
        },
        13,
    )
    .apps(4);
    let out = runner::run_sequence(&mut fc, &mut orch, &apps, true);
    assert_eq!(out.runtimes.len(), 4);
    assert!(orch.running().is_empty());
    let total_cpu: f64 = orch.load().cpu_used.iter().sum();
    assert!(total_cpu.abs() < 1e-9, "all CPU released: {total_cpu}");
}

#[test]
fn rackspace_single_app_placement_is_near_neutral() {
    // §2.2: "if a tenant were placing a single application on the
    // Rackspace network, there would be virtually no variation for Choreo
    // to exploit" — Choreo should neither help nor hurt much.
    let mut m = TrafficMatrix::zeros(4);
    m.set(0, 1, 200_000_000);
    m.set(2, 3, 200_000_000);
    let app = AppProfile::new("flat", vec![4.0; 4], m, 0); // 4-core tasks: no co-location
    let machines = Machines::uniform(6, 4.0);
    let run_with = |placer: PlacerKind| -> u64 {
        let mut cloud = Cloud::new(quiet(ProviderProfile::rackspace()), 8);
        cloud.allocate(6);
        let mut fc = cloud.flow_cloud(2);
        let mut orch = Choreo::new(machines.clone(), ChoreoConfig { placer, ..Default::default() });
        orch.measure(&mut fc);
        let p = orch.place(&app).expect("fits");
        runner::run_app(&mut fc, &mut orch, &app, &p)
    };
    let t_choreo = run_with(PlacerKind::Greedy) as f64;
    let t_rr = run_with(PlacerKind::RoundRobin) as f64;
    let diff = (t_choreo - t_rr).abs() / t_rr;
    assert!(diff < 0.05, "flat network: placements within 5%, got {:.1}%", 100.0 * diff);
}

#[test]
fn hose_model_is_inferred_from_measurement() {
    use choreo_repro::measure::bottleneck::survey;
    use choreo_repro::topology::MILLIS;
    let mut cloud = Cloud::new(quiet(ProviderProfile::ec2_2013(false)), 5);
    let vms = cloud.allocate(4);
    let mut pc = cloud.packet_cloud(3);
    let s = survey(&mut pc, &vms, 6, 200 * MILLIS);
    assert_eq!(s.infer_model(), RateModel::Hose);
    assert!(s.distinct_interference < 0.1);
    assert!(s.same_source_interference > 0.9);
}
