//! Integration tests for the measurement pipeline: packet trains against
//! netperf ground truth on the packet-level clouds (the Fig. 6 endpoints),
//! snapshot assembly, and temporal stability (Fig. 7's headline numbers).

use choreo_repro::cloudlab::{Cloud, ProviderProfile};
use choreo_repro::measure::{
    estimate_from_report, MeasureBackend, NetworkSnapshot, RateModel, StabilitySeries,
};
use choreo_repro::netsim::TrainConfig;
use choreo_repro::topology::{MBIT, SECS};

fn quiet(mut p: ProviderProfile) -> ProviderProfile {
    p.background.pairs = 0;
    p.colocate_prob = 0.0;
    p
}

#[test]
fn ec2_calibration_is_accurate_at_200_packet_bursts() {
    let mut cloud = Cloud::new(quiet(ProviderProfile::ec2_2013(false)), 61);
    let vms = cloud.allocate(2);
    let mut pc = cloud.packet_cloud(2);
    let truth = pc.netperf(vms[0], vms[1], 2 * SECS);
    let est = estimate_from_report(&pc.packet_train(vms[0], vms[1], TrainConfig::default()));
    let err = (est.throughput_bps - truth).abs() / truth;
    // Paper: ≈9% mean error on EC2 with 10×200. Allow up to 20%.
    assert!(err < 0.20, "EC2 train error {:.1}%", 100.0 * err);
    assert_eq!(est.loss_rate, 0.0, "quiet cloud drops nothing");
}

#[test]
fn rackspace_calibration_needs_2000_packet_bursts() {
    let mut cloud = Cloud::new(quiet(ProviderProfile::rackspace()), 62);
    let vms = cloud.allocate(2);
    let mut pc = cloud.packet_cloud(2);
    // Probe the fresh path first (the limiter's banked credit is exactly
    // what fools short trains in the field); ground-truth afterwards.
    let short = estimate_from_report(&pc.packet_train(vms[0], vms[1], TrainConfig::default()));
    let truth = pc.netperf(vms[0], vms[1], 2 * SECS);
    assert!((truth - 300.0 * MBIT).abs() / (300.0 * MBIT) < 0.1);
    let long = estimate_from_report(&pc.packet_train(vms[0], vms[1], TrainConfig::rackspace()));
    let err_short = (short.throughput_bps - truth).abs() / truth;
    let err_long = (long.throughput_bps - truth).abs() / truth;
    assert!(err_short > 0.20, "short bursts should overestimate: {:.1}%", 100.0 * err_short);
    assert!(err_long < 0.10, "2000-packet bursts accurate: {:.1}%", 100.0 * err_long);
    assert!(err_long < err_short / 2.0, "calibration helps dramatically");
}

#[test]
fn snapshot_measures_every_ordered_pair_with_trains() {
    let mut cloud = Cloud::new(quiet(ProviderProfile::ec2_2013(false)), 63);
    cloud.allocate(4);
    let mut pc = cloud.packet_cloud(1);
    let snap = NetworkSnapshot::measure(&mut pc, RateModel::Hose);
    assert_eq!(snap.n_vms(), 4);
    assert_eq!(snap.path_rates().len(), 12);
    for r in snap.path_rates() {
        assert!((300.0 * MBIT..5e9).contains(&r), "rate {r}");
    }
    let hops = snap.hops.as_ref().expect("traceroute collected");
    for i in 0..4 {
        assert_eq!(hops[i * 4 + i], 0);
    }
}

#[test]
fn temporal_stability_matches_fig7_headlines() {
    // EC2: with light background traffic, a measurement from τ minutes
    // ago predicts the current throughput within a few percent for the
    // overwhelming majority of paths.
    let mut cloud = Cloud::new(ProviderProfile::ec2_2013(false), 64);
    let vms = cloud.allocate(6);
    let mut fc = cloud.flow_cloud(3);
    let pairs: Vec<_> = vms
        .iter()
        .flat_map(|&a| vms.iter().map(move |&b| (a, b)))
        .filter(|(a, b)| a != b)
        .take(12)
        .collect();
    let mut series = vec![Vec::new(); pairs.len()];
    for _round in 0..61 {
        // 10 minutes of 10 s samples
        for (pi, &(a, b)) in pairs.iter().enumerate() {
            series[pi].push(fc.probe_path(a, b));
        }
        fc.advance(10 * SECS);
    }
    let mut medians = Vec::new();
    for s in series {
        let st = StabilitySeries::new(10 * SECS, s);
        medians.push(st.median_error(60 * SECS)); // τ = 1 min
    }
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overall_median = medians[medians.len() / 2];
    assert!(
        overall_median < 0.05,
        "median 1-min prediction error should be small: {:.2}%",
        100.0 * overall_median
    );
}

#[test]
fn cross_traffic_estimator_sees_background_load() {
    use choreo_repro::measure::cross_traffic_estimate;
    // Quiet EC2 + one extra tenant flow sharing the probe VM's hose is
    // not the scenario (hose is per-VM); instead share a path: the
    // flow-level Rackspace fabric is flat, so run two of OUR OWN flows and
    // verify c ≈ 1 on the shared hose.
    let mut cloud = Cloud::new(quiet(ProviderProfile::rackspace()), 65);
    let vms = cloud.allocate(3);
    let mut fc = cloud.flow_cloud(4);
    let solo = fc.netperf(vms[0], vms[1], SECS);
    let both = fc.concurrent_netperf(&[(vms[0], vms[1]), (vms[0], vms[2])], SECS);
    let c = cross_traffic_estimate(both[0], solo);
    assert!((c - 1.0).abs() < 0.15, "one competing connection: c = {c:.2}");
}
