//! Steady-state reallocation performs **zero heap allocation**.
//!
//! A counting global allocator wraps the system allocator; after warming
//! the arena's free lists and the solver's scratch buffers, a sustained
//! churn of flow replacements plus reallocations — warm-started delta
//! solves included — and the engine's what-if probe path must not
//! allocate at all. This pins down the tentpole guarantee:
//! `reallocate_if_dirty` (arena maintenance + warm solve + write-back)
//! does no per-call `Vec` construction.
//!
//! Kept in its own integration-test binary with a single `#[test]` so no
//! concurrent test pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use choreo_repro::flowsim::{FlowArena, FlowSim, MaxMinSolver, ResourcePartition, ShardedSolver};
use choreo_repro::topology::route::splitmix64;
use choreo_repro::topology::{
    dumbbell, LinkSpec, MultiRootedTreeSpec, RouteTable, GBIT, MICROS, SECS,
};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_reallocation_allocates_nothing() {
    // ---------------------------------------------------- solver + arena
    let spec = MultiRootedTreeSpec {
        cores: 2,
        pods: 4,
        aggs_per_pod: 2,
        tors_per_pod: 4,
        hosts_per_tor: 4,
        ..Default::default()
    };
    let topo = spec.build();
    let routes = RouteTable::new(&topo);
    let caps: Vec<f64> =
        topo.links().iter().flat_map(|l| [l.spec.rate_bps, l.spec.rate_bps]).collect();
    let hosts = topo.hosts();
    let path_of = |id: u64| -> Vec<u32> {
        let a = hosts[(splitmix64(id) % hosts.len() as u64) as usize];
        let mut b = hosts[(splitmix64(id ^ 0xBEEF) % hosts.len() as u64) as usize];
        if a == b {
            b = hosts[(hosts.iter().position(|&x| x == a).unwrap() + 1) % hosts.len()];
        }
        routes
            .path_for_flow(a, b, splitmix64(id.wrapping_mul(0x9E37)))
            .hops
            .iter()
            .map(choreo_repro::flowsim::hop_resource)
            .collect()
    };
    let n_flows = 220u64;
    let churn: Vec<Vec<u32>> = (0..n_flows + 400).map(path_of).collect();
    let mut arena = FlowArena::new(caps.len());
    let mut slots: Vec<_> = churn[..n_flows as usize].iter().map(|p| arena.add(p)).collect();
    let mut solver = MaxMinSolver::new();
    let mut rates = Vec::new();
    // Warm-up: run the exact churn pattern measured below once, so every
    // free list, reverse-index list and scratch buffer reaches its
    // steady-state footprint (a different event mix could legitimately
    // nudge one reverse-index list past its previous high-water mark).
    for round in 0..3 {
        for (i, arrival) in churn[n_flows as usize..].iter().enumerate() {
            let k = (i + round) % slots.len();
            arena.remove(slots[k]);
            slots[k] = arena.add(arrival);
            solver.solve(&caps, &arena, &mut rates);
        }
    }
    let before = alloc_count();
    let mut checksum = 0.0f64;
    for round in 0..3 {
        for (i, arrival) in churn[n_flows as usize..].iter().enumerate() {
            let k = (i + round) % slots.len();
            arena.remove(slots[k]);
            slots[k] = arena.add(arrival);
            solver.solve(&caps, &arena, &mut rates);
            checksum += rates[slots[k].0 as usize];
        }
    }
    let solver_allocs = alloc_count() - before;
    assert!(checksum > 0.0, "solves produced rates");
    assert_eq!(solver_allocs, 0, "steady-state arena churn + reallocation must not allocate");

    // ------------------------------------------------ warm-started solves
    // Warm-started delta solves chain off the previous event's freeze-round
    // log (replaying it, re-recording into the spare log buffers, and
    // tracking the perturbed cascade in the indexed live heap). After the
    // same warm-up discipline as above, a sustained churn of single-flow
    // events must not allocate at all.
    let mut warm_solver = MaxMinSolver::new();
    let mut warm_rates = Vec::new();
    warm_solver.solve_warm(&caps, &mut arena, &mut warm_rates);
    for round in 0..3 {
        for (i, arrival) in churn[n_flows as usize..].iter().enumerate() {
            let k = (i + round) % slots.len();
            arena.remove(slots[k]);
            warm_solver.solve_warm(&caps, &mut arena, &mut warm_rates);
            slots[k] = arena.add(arrival);
            warm_solver.solve_warm(&caps, &mut arena, &mut warm_rates);
        }
    }
    let before = alloc_count();
    let mut warm_checksum = 0.0f64;
    for round in 0..3 {
        for (i, arrival) in churn[n_flows as usize..].iter().enumerate() {
            let k = (i + round) % slots.len();
            arena.remove(slots[k]);
            warm_solver.solve_warm(&caps, &mut arena, &mut warm_rates);
            slots[k] = arena.add(arrival);
            warm_solver.solve_warm(&caps, &mut arena, &mut warm_rates);
            warm_checksum += warm_rates[slots[k].0 as usize];
        }
    }
    let warm_allocs = alloc_count() - before;
    assert!(warm_checksum > 0.0, "warm solves produced rates");
    assert_eq!(warm_allocs, 0, "steady-state warm-started reallocation must not allocate");

    // -------------------------------------------------- sharded re-solves
    // The sharded path rebuilds the per-pod sub-arenas from scratch every
    // solve (split), runs one logged solve per shard, merges the shard
    // logs and reconciles — and every buffer involved (sub-arenas, slot
    // maps, boundary lists, per-shard solver scratch, the merged log, the
    // main solver's walk state) is retained across solves. With a single
    // worker (no thread spawns) a steady-state sharded re-solve must
    // therefore allocate nothing per shard once warm. Warm-up runs two
    // full passes of the measured churn so the measured pass revisits
    // exactly the flow-set trajectory (and thus the high-water marks) the
    // warm-up already reached.
    let part = ResourcePartition::for_topology(&topo);
    assert!(part.n_pods() >= 2, "workload tree must have pod structure");
    let mut sharded = ShardedSolver::new(1);
    let mut sh_solver = MaxMinSolver::new();
    let mut sh_rates = Vec::new();
    for _pass in 0..2 {
        for round in 0..3 {
            for (i, arrival) in churn[n_flows as usize..].iter().enumerate() {
                let k = (i + round) % slots.len();
                arena.remove(slots[k]);
                sharded.solve_sharded(&caps, &mut arena, &part, &mut sh_solver, &mut sh_rates);
                slots[k] = arena.add(arrival);
                sharded.solve_sharded(&caps, &mut arena, &part, &mut sh_solver, &mut sh_rates);
            }
        }
    }
    let before = alloc_count();
    let mut sh_checksum = 0.0f64;
    for round in 0..3 {
        for (i, arrival) in churn[n_flows as usize..].iter().enumerate() {
            let k = (i + round) % slots.len();
            arena.remove(slots[k]);
            sharded.solve_sharded(&caps, &mut arena, &part, &mut sh_solver, &mut sh_rates);
            slots[k] = arena.add(arrival);
            sharded.solve_sharded(&caps, &mut arena, &part, &mut sh_solver, &mut sh_rates);
            sh_checksum += sh_rates[slots[k].0 as usize];
        }
    }
    let sharded_allocs = alloc_count() - before;
    assert!(sh_checksum > 0.0, "sharded solves produced rates");
    assert_eq!(sharded_allocs, 0, "steady-state sharded re-solve must not allocate once warm");

    // --------------------------------- pooled sharded re-solves (2 workers)
    // The persistent pool hands shard jobs to long-lived worker threads
    // over a futex-backed Mutex/Condvar pair; the job and completion
    // queues are `VecDeque`s whose capacities survive across solves, and
    // the per-shard solver scratch lives in the retained shard contexts.
    // Once the first pooled solve has spawned the threads and sized the
    // queues, a steady-state pooled re-solve must not allocate — on any
    // thread (the counter is global, so worker-side allocations count).
    // Single-flow churn dirties at most one pod and takes the serial
    // path; the pool engages on bulk reshuffles (≥ 2 dirty pods per
    // solve), so this section replays the churn in epochs of 16
    // replacements per re-solve — the workload sharding exists for.
    let mut pooled = ShardedSolver::new(2);
    let mut pl_solver = MaxMinSolver::new();
    let mut pl_rates = Vec::new();
    for _pass in 0..2 {
        for round in 0..3 {
            for (epoch, block) in churn[n_flows as usize..].chunks(16).enumerate() {
                for (j, arrival) in block.iter().enumerate() {
                    let k = (epoch * 16 + j + round) % slots.len();
                    arena.remove(slots[k]);
                    slots[k] = arena.add(arrival);
                }
                pooled.solve_sharded(&caps, &mut arena, &part, &mut pl_solver, &mut pl_rates);
            }
        }
    }
    assert!(pooled.pool_jobs_executed() > 0, "bulk churn never engaged the worker pool");
    let warm_jobs = pooled.pool_jobs_executed();
    let before = alloc_count();
    let mut pl_checksum = 0.0f64;
    for round in 0..3 {
        for (epoch, block) in churn[n_flows as usize..].chunks(16).enumerate() {
            for (j, arrival) in block.iter().enumerate() {
                let k = (epoch * 16 + j + round) % slots.len();
                arena.remove(slots[k]);
                slots[k] = arena.add(arrival);
            }
            pooled.solve_sharded(&caps, &mut arena, &part, &mut pl_solver, &mut pl_rates);
            pl_checksum += pl_rates[slots[epoch % slots.len()].0 as usize];
        }
    }
    let pooled_allocs = alloc_count() - before;
    assert!(pl_checksum > 0.0, "pooled solves produced rates");
    assert!(pooled.pool_jobs_executed() > warm_jobs, "measured pass bypassed the pool");
    assert_eq!(pooled_allocs, 0, "steady-state pooled sharded re-solve must not allocate");

    // ------------------------------------------------- engine what-if path
    // The probe joins the arena, the persistent solver reallocates, and
    // the probe leaves: the full reallocate_if_dirty machinery, exercised
    // through FlowSim, also allocation-free once warm.
    let t =
        Arc::new(dumbbell(4, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(GBIT, 20 * MICROS)));
    let r = Arc::new(RouteTable::new(&t));
    let mut sim = FlowSim::new(t.clone(), r, LinkSpec::new(4.2 * GBIT, 20 * MICROS), 7);
    let h = sim.topology().hosts().to_vec();
    for i in 0..4 {
        sim.start_flow(h[i], h[4 + i], None, None, 0, i as u64);
    }
    sim.run_until(SECS);
    let _ = sim.probe_rate(h[0], h[4], None); // warm the probe scratch
    let before = alloc_count();
    let mut acc = 0.0;
    for _ in 0..100 {
        acc += sim.probe_rate(h[0], h[4], None);
        acc += sim.probe_rate(h[1], h[5], None);
    }
    let probe_allocs = alloc_count() - before;
    assert!(acc > 0.0);
    assert_eq!(probe_allocs, 0, "warm probe_rate (what-if replay) must not allocate");

    // ------------------------------------------------ batched what-if path
    // Batched candidate scoring reuses the probe batch and the caller's
    // output buffer: once warm, an entire batch per call allocates nothing.
    let probes = [(h[0], h[4], None), (h[1], h[5], None), (h[2], h[6], None), (h[3], h[7], None)];
    let mut out = Vec::new();
    sim.probe_rates(&probes, &mut out); // warm the batch + output buffers
    let before = alloc_count();
    let mut acc = 0.0;
    for _ in 0..100 {
        sim.probe_rates(&probes, &mut out);
        acc += out.iter().sum::<f64>();
    }
    let batch_allocs = alloc_count() - before;
    assert!(acc > 0.0);
    assert_eq!(batch_allocs, 0, "warm probe_rates (batched what-if) must not allocate");

    // ----------------------------------------- flow-record recycling churn
    // A sustained arrive → retire → release → re-arrive cycle through the
    // engine: record slots (and their generation stamps) recycle through
    // the free list, the per-tag completion counters come and go in a
    // table sized during warm-up, and the event heap and arena churn in
    // retained buffers. Steady state must allocate nothing — and the
    // record table must not grow by even one entry.
    let ms = SECS / 1000;
    let mut t_now = sim.now();
    let cycle = |sim: &mut FlowSim, t_now: &mut u64, i: u64| -> f64 {
        *t_now += 5 * ms;
        let key = sim.start_flow(h[0], h[4], Some(10_000), None, *t_now, 90 + (i % 4));
        *t_now += 5 * ms;
        sim.run_until(*t_now); // 10 kB at ≥ a fair share: long done by now
        let delivered = sim.delivered_bytes(key) as f64;
        sim.release_flow(key);
        delivered
    };
    for i in 0..100 {
        cycle(&mut sim, &mut t_now, i);
    }
    let records = sim.flow_records();
    let before = alloc_count();
    let mut acc = 0.0;
    for i in 0..100 {
        acc += cycle(&mut sim, &mut t_now, i);
    }
    let recycle_allocs = alloc_count() - before;
    assert!(acc > 0.0);
    assert_eq!(sim.flow_records(), records, "record table grew under release churn");
    assert_eq!(recycle_allocs, 0, "steady-state recycling churn must not allocate");
}
