//! Sharded solve wiring and degenerate partitions.
//!
//! The property suite (`tests/props.rs`) pins bit-identity under
//! randomized churn; this file pins the **shapes**: single-pod
//! topologies (no parallelism to extract — `FlowSim` falls back),
//! all-flows-cross-pod worst cases (the dumbbell, whose partition
//! degenerates to singleton pods), empty shards, and the end-to-end
//! engine wiring (`FlowSim::set_solver_mode` must never change a
//! simulation's trajectory, only its wall-clock).

use std::sync::Arc;

use choreo_repro::flowsim::{
    FlowArena, FlowSim, MaxMinSolver, ResourcePartition, ShardedSolver, SolverMode,
};
use choreo_repro::topology::{
    dumbbell, two_rack, LinkSpec, MultiRootedTreeSpec, RouteTable, GBIT, MBIT, MICROS, MILLIS, SECS,
};

fn assert_bits_match_cold(caps: &[f64], arena: &mut FlowArena, part: &ResourcePartition) {
    for workers in [1usize, 2, 8] {
        let mut sharded = ShardedSolver::new(workers);
        let mut main = MaxMinSolver::new();
        let mut rates = Vec::new();
        sharded.solve_sharded(caps, arena, part, &mut main, &mut rates);
        let mut cold = MaxMinSolver::new();
        let mut cold_rates = Vec::new();
        cold.solve(caps, arena, &mut cold_rates);
        assert_eq!(rates.len(), cold_rates.len());
        for (slot, (a, b)) in rates.iter().zip(&cold_rates).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{workers} workers, slot {slot}: sharded {a} vs cold {b}"
            );
        }
    }
}

/// Flow paths between host pair `(i, j)` of `topo`, as engine resources.
fn path(
    topo: &choreo_repro::topology::Topology,
    routes: &RouteTable,
    i: usize,
    j: usize,
) -> Vec<u32> {
    let h = topo.hosts();
    routes.paths(h[i], h[j])[0].hops.iter().map(choreo_repro::flowsim::hop_resource).collect()
}

#[test]
fn single_pod_topology_solves_without_pod_structure() {
    // One pod under the cores: the partition finds exactly one pod, the
    // whole flow set is local to it, and the merged log is that single
    // shard's log verbatim — still bit-exact, just with nothing to fan
    // out. (FlowSim falls back to warm solves for this shape; see
    // flowsim_falls_back_below_two_pods.)
    let spec = MultiRootedTreeSpec { pods: 1, ..Default::default() };
    let topo = spec.build();
    let routes = RouteTable::new(&topo);
    let part = ResourcePartition::for_topology(&topo);
    assert_eq!(part.n_pods(), 1);
    let caps: Vec<f64> =
        topo.links().iter().flat_map(|l| [l.spec.rate_bps, l.spec.rate_bps]).collect();
    let mut arena = FlowArena::new(caps.len());
    for (i, j) in [(0, 1), (0, 4), (2, 7), (5, 3), (6, 1)] {
        arena.add(&path(&topo, &routes, i, j));
    }
    assert_bits_match_cold(&caps, &mut arena, &part);
    let mut sharded = ShardedSolver::new(2);
    let mut main = MaxMinSolver::new();
    let mut rates = Vec::new();
    sharded.solve_sharded(&caps, &mut arena, &part, &mut main, &mut rates);
    assert_eq!(sharded.view().n_boundary(), 0, "nothing crosses pods");
    assert_eq!(sharded.view().n_local(), 5);
}

#[test]
fn all_flows_cross_pod_worst_case_reconciles_live() {
    // Dumbbell: both ToRs are the spine tier, every host is a singleton
    // pod and every link touches the spine — the partition exists
    // (n_pods ≥ 2) but classifies every flow as boundary, so the
    // reconciliation pass does all the freezing live. Must not panic or
    // diverge.
    let topo = dumbbell(4, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(GBIT, 20 * MICROS));
    let routes = RouteTable::new(&topo);
    let part = ResourcePartition::for_topology(&topo);
    assert_eq!(part.n_pods(), 8, "every host its own pod");
    let caps: Vec<f64> =
        topo.links().iter().flat_map(|l| [l.spec.rate_bps, l.spec.rate_bps]).collect();
    let mut arena = FlowArena::new(caps.len());
    for (i, j) in [(0, 4), (1, 5), (2, 6), (3, 7), (0, 5), (4, 1)] {
        arena.add(&path(&topo, &routes, i, j));
    }
    let mut sharded = ShardedSolver::new(2);
    let mut main = MaxMinSolver::new();
    let mut rates = Vec::new();
    sharded.solve_sharded(&caps, &mut arena, &part, &mut main, &mut rates);
    assert_eq!(sharded.view().n_local(), 0, "no flow fits inside a singleton pod");
    assert_eq!(sharded.view().n_boundary(), 6);
    assert_bits_match_cold(&caps, &mut arena, &part);
}

#[test]
fn empty_shards_and_empty_arenas_are_fine() {
    // Two racks, flows only in rack 0: rack 1's shard solves an empty
    // sub-arena and contributes an empty log. Also: a fully empty arena.
    let topo = two_rack(4, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(10.0 * GBIT, 5 * MICROS));
    let routes = RouteTable::new(&topo);
    let part = ResourcePartition::for_topology(&topo);
    assert_eq!(part.n_pods(), 2, "one pod per rack");
    let caps: Vec<f64> =
        topo.links().iter().flat_map(|l| [l.spec.rate_bps, l.spec.rate_bps]).collect();
    let mut arena = FlowArena::new(caps.len());
    assert_bits_match_cold(&caps, &mut arena, &part); // no flows at all
    for (i, j) in [(0, 1), (1, 2), (3, 0)] {
        arena.add(&path(&topo, &routes, i, j)); // rack-0 only
    }
    let mut sharded = ShardedSolver::new(2);
    let mut main = MaxMinSolver::new();
    let mut rates = Vec::new();
    sharded.solve_sharded(&caps, &mut arena, &part, &mut main, &mut rates);
    assert_eq!(sharded.view().n_local(), 3);
    assert_eq!(sharded.view().n_boundary(), 0);
    assert_bits_match_cold(&caps, &mut arena, &part);
}

/// Build twin simulators over the same multi-rooted tree with the same
/// seed; `sharded_workers` enables the sharded path on the second.
fn twin_sims(sharded_workers: usize) -> (FlowSim, FlowSim) {
    let spec = MultiRootedTreeSpec {
        cores: 2,
        pods: 3,
        aggs_per_pod: 2,
        tors_per_pod: 2,
        hosts_per_tor: 2,
        ..Default::default()
    };
    let topo = Arc::new(spec.build());
    let routes = Arc::new(RouteTable::new(&topo));
    let loopback = LinkSpec::new(4.2 * GBIT, 20 * MICROS);
    let plain = FlowSim::new(topo.clone(), routes.clone(), loopback, 42);
    let mut sharded = FlowSim::new(topo, routes, loopback, 42);
    let prev = sharded.set_solver_mode(SolverMode::sharded(sharded_workers));
    assert!(!prev.is_sharded(), "a fresh sim starts warm");
    assert_eq!(sharded.sharded_pods(), Some(3));
    (plain, sharded)
}

#[test]
fn flowsim_sharded_trajectory_is_bit_identical() {
    // The same event script — bounded flows, co-located traffic, a hose
    // cap (a spine resource the partition never saw), ON-OFF background,
    // probes — must produce the exact same trajectory with and without
    // sharding: rates, delivered bytes and completion times all match.
    let (mut a, mut b) = twin_sims(2);
    let script = |s: &mut FlowSim| -> (Vec<f64>, Vec<u64>, u64) {
        let h = s.topology().hosts().to_vec();
        let hose = s.add_hose(300.0 * MBIT);
        let f0 = s.start_flow(h[0], h[5], Some(40_000_000), None, 0, 1);
        let f1 = s.start_flow(h[1], h[9], Some(60_000_000), None, 0, 1);
        let f2 = s.start_flow(h[2], h[2], None, Some(hose), 0, 2); // loopback
        let f3 = s.start_flow(h[3], h[10], None, Some(hose), 10 * MILLIS, 2);
        s.add_onoff(h[4], h[8], None, 50 * MILLIS, 50 * MILLIS, 0);
        let mut rates = Vec::new();
        let mut delivered = Vec::new();
        for step in 1..=20u64 {
            s.run_until(step * 50 * MILLIS);
            for &f in &[f0, f1, f2, f3] {
                rates.push(s.rate_bps(f));
                delivered.push(s.delivered_bytes(f));
            }
            rates.push(s.probe_rate(h[0], h[11], None));
            rates.push(s.probe_rate(h[6], h[6], None));
        }
        s.stop_flow_at(f2, 2 * SECS);
        s.stop_flow_at(f3, 2 * SECS);
        let end = s.run_to_completion();
        (rates, delivered, end)
    };
    let (ra, da, ea) = script(&mut a);
    let (rb, db, eb) = script(&mut b);
    assert_eq!(ea, eb, "completion times diverged");
    assert_eq!(da, db, "delivered bytes diverged");
    assert_eq!(ra.len(), rb.len());
    for (i, (x, y)) in ra.iter().zip(&rb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "sample {i}: plain {x} vs sharded {y}");
    }
}

#[test]
fn flowsim_falls_back_without_real_pod_structure() {
    // Two shapes where the event loop must keep the warm path: a
    // single-pod tree (one pod, nothing to fan out) and a dumbbell
    // (2·N singleton-host pods, but none owning an intra-pod link —
    // `ResourcePartition::link_pods() == 0`, so sharding it would make
    // every churn event a full live reconciliation). Either way the
    // simulation must behave identically to an unsharded twin.
    let run = |s: &mut FlowSim| -> Vec<u64> {
        let h = s.topology().hosts().to_vec();
        let f0 = s.start_flow(h[0], h[7], Some(25_000_000), None, 0, 1);
        let f1 = s.start_flow(h[1], h[6], Some(25_000_000), None, 0, 1);
        s.run_to_completion();
        vec![s.completion_time(f0).unwrap(), s.completion_time(f1).unwrap()]
    };
    let spec = MultiRootedTreeSpec { pods: 1, ..Default::default() };
    let topo = Arc::new(spec.build());
    let routes = Arc::new(RouteTable::new(&topo));
    let loopback = LinkSpec::new(4.2 * GBIT, 20 * MICROS);
    let mut plain = FlowSim::new(topo.clone(), routes.clone(), loopback, 7);
    let mut sharded = FlowSim::new(topo, routes, loopback, 7);
    sharded.set_solver_mode(SolverMode::sharded(2));
    assert_eq!(sharded.sharded_pods(), Some(1), "single pod found");
    assert_eq!(run(&mut plain), run(&mut sharded));
    // Toggling the mode back to warm mid-life is allowed too.
    let prev = sharded.set_solver_mode(SolverMode::Warm);
    assert!(prev.is_sharded(), "the detached mode reports what ran before");
    assert_eq!(sharded.sharded_pods(), None);

    let topo = Arc::new(dumbbell(4, LinkSpec::new(GBIT, 5 * MICROS), LinkSpec::new(GBIT, MICROS)));
    let part = ResourcePartition::for_topology(&topo);
    assert_eq!(part.n_pods(), 8);
    assert_eq!(part.link_pods(), 0, "singleton pods own no links");
    let routes = Arc::new(RouteTable::new(&topo));
    let mut plain = FlowSim::new(topo.clone(), routes.clone(), loopback, 11);
    let mut sharded = FlowSim::new(topo, routes, loopback, 11);
    sharded.set_solver_mode(SolverMode::sharded(2));
    assert_eq!(sharded.sharded_pods(), Some(8), "eight singleton pods");
    assert_eq!(run(&mut plain), run(&mut sharded));
}

#[test]
fn one_warm_pool_serves_two_sims_sequentially() {
    // The persistent worker pool outlives the sim that spawned it: run
    // sim A sharded, detach its solver (`set_solver_mode(Warm)` returns
    // the previous mode with the solver — workers *and* warm pool — in
    // its `pool` field), hand it to sim B on a different topology
    // (attaching via `SolverMode::Sharded { pool: Some(..) }` resets the
    // solver, forcing a full re-split against B's arena), and B's
    // trajectory must still bit-match an unsharded twin while the same
    // worker threads keep executing jobs (`pool_jobs_executed` strictly
    // grows across the hand-off).
    let run = |s: &mut FlowSim| -> Vec<u64> {
        let h = s.topology().hosts().to_vec();
        let mut out = Vec::new();
        let mut keys = Vec::new();
        for i in 0..3 * h.len() {
            let f = s.start_flow(
                h[i % h.len()],
                h[(i * 7 + 3) % h.len()],
                Some(10_000_000 + 1_000_000 * i as u64),
                None,
                0,
                i as u64,
            );
            keys.push(f);
        }
        for step in 1..=8u64 {
            s.run_until(step * 10 * MILLIS);
            for &f in &keys {
                out.push(s.rate_bps(f).to_bits());
            }
        }
        s.run_to_completion();
        for &f in &keys {
            out.push(s.completion_time(f).unwrap());
        }
        out
    };
    let (mut plain_a, mut sharded_a) = twin_sims(2);
    assert_eq!(run(&mut plain_a), run(&mut sharded_a), "sim A diverged");
    let SolverMode::Sharded { pool: Some(solver), .. } =
        sharded_a.set_solver_mode(SolverMode::Warm)
    else {
        panic!("solver attached")
    };
    assert_eq!(sharded_a.sharded_pods(), None, "detach disables the sharded path");
    let executed_a = solver.pool_jobs_executed();
    assert!(executed_a > 0, "sim A never dispatched to the 2-worker pool");

    // Sim B: a different pod count, so the inherited view is useless
    // until the reset re-splits it.
    let spec = MultiRootedTreeSpec {
        cores: 2,
        pods: 4,
        aggs_per_pod: 2,
        tors_per_pod: 2,
        hosts_per_tor: 2,
        ..Default::default()
    };
    let topo = Arc::new(spec.build());
    let routes = Arc::new(RouteTable::new(&topo));
    let loopback = LinkSpec::new(4.2 * GBIT, 20 * MICROS);
    let mut plain_b = FlowSim::new(topo.clone(), routes.clone(), loopback, 7);
    let mut sharded_b = FlowSim::new(topo, routes, loopback, 7);
    let workers = solver.workers();
    sharded_b.set_solver_mode(SolverMode::Sharded { workers, pool: Some(solver) });
    assert_eq!(sharded_b.sharded_pods(), Some(4), "four pods after the hand-off");
    assert_eq!(run(&mut plain_b), run(&mut sharded_b), "sim B diverged on the inherited solver");
    let SolverMode::Sharded { pool: Some(solver), .. } =
        sharded_b.set_solver_mode(SolverMode::Warm)
    else {
        panic!("solver attached")
    };
    assert!(
        solver.pool_jobs_executed() > executed_a,
        "sim B never reused the inherited pool ({} jobs, sim A already ran {executed_a})",
        solver.pool_jobs_executed()
    );
}
