//! Property tests for the online placement service: whole service runs
//! are deterministic (bit-identical across repeats and solver worker
//! counts), and admission never violates the capacity / queue / validity
//! invariants, at any point of any run.

use std::sync::Arc;

use choreo_repro::metrics::span::{self, RegistrySpans};
use choreo_repro::metrics::Registry;
use choreo_repro::online::{
    DriftConfig, MigrationConfig, OnlineConfig, OnlineScheduler, PlacementPolicy, SchedulerBuilder,
};
use choreo_repro::profile::{
    merge_events, switch_link_groups, AppPattern, AppProfile, CorrelatedBatchConfig,
    FlashCrowdConfig, HeavyTailConfig, NetworkEvent, NetworkEventStream, NetworkEventStreamConfig,
    ServiceEvent, SwitchFailureConfig, TenantEvent, TenantEventKind, TrafficMatrix,
    WorkloadGenConfig, WorkloadStream, WorkloadStreamConfig,
};
use choreo_repro::topology::{MultiRootedTreeSpec, RouteTable, Topology, SECS};
use proptest::prelude::*;

/// A small pod-structured tree (4 pods × 2 ToRs × 2 hosts = 16 hosts):
/// real shard structure so the worker-count property exercises the
/// sharded solve path, small enough for many property cases.
fn test_tree() -> Topology {
    MultiRootedTreeSpec {
        cores: 2,
        pods: 4,
        aggs_per_pod: 1,
        tors_per_pod: 2,
        hosts_per_tor: 2,
        ..Default::default()
    }
    .build()
}

/// An offered load well above the 16-host cluster's capacity: the queue
/// and rejection paths stay busy, which is exactly what the invariant
/// checks want to see.
fn events(seed: u64, n: usize) -> Vec<TenantEvent> {
    let cfg = WorkloadStreamConfig {
        gen: WorkloadGenConfig {
            tasks_min: 2,
            tasks_max: 5,
            mean_interarrival: 10 * SECS,
            ..Default::default()
        },
        mean_intensity_change: 10 * SECS,
        ..Default::default()
    };
    WorkloadStream::new(cfg, seed).take(n).collect()
}

fn service_cfg(policy: PlacementPolicy, workers: usize) -> OnlineConfig {
    OnlineConfig {
        policy,
        workers,
        candidate_hosts: 8,
        queue_capacity: 4,
        migration: MigrationConfig { cadence: Some(15 * SECS), ..Default::default() },
        ..Default::default()
    }
}

fn service(policy: PlacementPolicy, workers: usize, seed: u64) -> OnlineScheduler {
    let topo = Arc::new(test_tree());
    let routes = Arc::new(RouteTable::new(&topo));
    SchedulerBuilder::new(topo, routes).config(service_cfg(policy, workers)).seed(seed).build()
}

/// Run a full service over `evs`, checking the safety invariants after
/// every event, and return the trajectory digest plus headline counters.
fn run_checked(
    policy: PlacementPolicy,
    workers: usize,
    seed: u64,
    evs: &[TenantEvent],
) -> (u64, u64, u64, u64) {
    let mut svc = service(policy, workers, seed);
    for ev in evs {
        svc.step(ev);
        svc.check_invariants();
    }
    let s = svc.stats();
    (s.trace_hash(), s.admitted + s.queue_admitted, s.rejected, s.migrations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn service_runs_are_deterministic_and_safe(
        stream_seed in 0u64..1000,
        sim_seed in 0u64..1000,
    ) {
        let evs = events(stream_seed, 250);
        // Admission invariants hold after every event, and a repeat of
        // the run lands on the identical trajectory.
        let a = run_checked(PlacementPolicy::Greedy, 0, sim_seed, &evs);
        let b = run_checked(PlacementPolicy::Greedy, 0, sim_seed, &evs);
        prop_assert_eq!(a, b, "same stream + seed must replay bit-identically");
        // Sharded solve fan-out is a wall-clock knob, never a trajectory
        // knob: any worker count reproduces the warm-path run exactly.
        for workers in [1usize, 2, 8] {
            let w = run_checked(PlacementPolicy::Greedy, workers, sim_seed, &evs);
            prop_assert_eq!(a, w, "worker count {} changed the trajectory", workers);
        }
    }
}

/// Like [`run_checked`], but with the whole observability stack live:
/// registered labeled metric families behind a real [`Registry`], the
/// solver-phase span recorder installed, and the decision trace
/// rendered to JSONL both mid-run and at the end. Every piece is
/// observational-only, so the digest and counters must match the bare
/// run's bit for bit.
fn run_instrumented(workers: usize, seed: u64, evs: &[TenantEvent]) -> (u64, u64, u64, u64) {
    let registry = Arc::new(Registry::new());
    span::install(RegistrySpans::new(Arc::clone(&registry)));
    let topo = Arc::new(test_tree());
    let routes = Arc::new(RouteTable::new(&topo));
    let mut svc = SchedulerBuilder::new(topo, routes)
        .config(service_cfg(PlacementPolicy::Greedy, workers))
        .seed(seed)
        .metrics_registry(&registry)
        .build();
    for (i, ev) in evs.iter().enumerate() {
        svc.step(ev);
        svc.check_invariants();
        if i % 64 == 0 {
            // Exporting mid-run must not perturb the trajectory either.
            let _ = svc.stats().decisions().to_jsonl(16);
            let _ = registry.render();
        }
    }
    span::uninstall();
    let trace = svc.stats().decisions().to_jsonl(usize::MAX);
    assert!(!trace.is_empty(), "a busy run must leave a decision trace");
    let s = svc.stats();
    (s.trace_hash(), s.admitted + s.queue_admitted, s.rejected, s.migrations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn instrumentation_never_changes_the_trajectory(
        stream_seed in 0u64..1000,
        sim_seed in 0u64..1000,
    ) {
        let evs = events(stream_seed, 250);
        let bare = run_checked(PlacementPolicy::Greedy, 0, sim_seed, &evs);
        // Live recorder + families + trace export, across worker
        // counts: the digest may never move.
        for workers in [1usize, 2, 8] {
            let instr = run_instrumented(workers, sim_seed, &evs);
            prop_assert_eq!(bare, instr, "instrumented run at {} workers diverged", workers);
        }
    }
}

/// A fault-laden service stream: the tenant events of [`events`] merged
/// with a seeded [`NetworkEventStream`] over the test tree's links,
/// cut at the tenant stream's horizon.
fn fault_events(stream_seed: u64, net_seed: u64, n: usize) -> Vec<ServiceEvent> {
    let tenants = events(stream_seed, n);
    let horizon = tenants.last().map_or(0, |e| e.at);
    let cfg = NetworkEventStreamConfig {
        n_links: test_tree().link_count() as u32,
        mean_time_between_incidents: 20 * SECS,
        ..Default::default()
    };
    let network: Vec<NetworkEvent> =
        NetworkEventStream::new(cfg, net_seed).take_while(|e| e.at <= horizon).collect();
    merge_events(tenants, network)
}

/// Run a full service over a merged tenant + network stream with drift
/// re-measurement on, checking the safety invariants after every event,
/// and return the trajectory digest plus headline counters.
fn run_checked_faults(workers: usize, seed: u64, evs: &[ServiceEvent]) -> (u64, u64, u64, u64) {
    let topo = Arc::new(test_tree());
    let routes = Arc::new(RouteTable::new(&topo));
    let cfg = OnlineConfig {
        workers,
        candidate_hosts: 8,
        queue_capacity: 4,
        migration: MigrationConfig { cadence: Some(15 * SECS), ..Default::default() },
        drift: DriftConfig { cadence: Some(10 * SECS), ..Default::default() },
        ..Default::default()
    };
    let mut svc = SchedulerBuilder::new(topo, routes).config(cfg).seed(seed).build();
    for ev in evs {
        svc.service_step(ev);
        svc.check_invariants();
    }
    let s = svc.stats();
    (s.trace_hash(), s.network_events, s.drift_detected, s.failure_migrations + s.migrations)
}

proptest! {
    // The chaos suite: CI re-runs it at PROPTEST_CASES=256.
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(6)))]
    #[test]
    fn fault_laden_runs_are_deterministic_and_safe(
        stream_seed in 0u64..1000,
        net_seed in 0u64..1000,
    ) {
        let evs = fault_events(stream_seed, net_seed, 200);
        // The stream must actually carry faults, or the property is
        // vacuous.
        prop_assert!(evs.iter().any(|e| matches!(e, ServiceEvent::Network(_))));
        // Invariants hold after every tenant AND network event, and the
        // whole fault-laden trajectory replays bit-identically.
        let a = run_checked_faults(0, 7, &evs);
        let b = run_checked_faults(0, 7, &evs);
        prop_assert_eq!(a, b, "same streams + seed must replay bit-identically");
        prop_assert!(a.1 > 0, "network events must have been consumed");
        // Worker count remains a wall-clock knob under faults too: the
        // capacity dirty window re-solves bit-identical at any fan-out.
        for workers in [1usize, 2, 8] {
            let w = run_checked_faults(workers, 7, &evs);
            prop_assert_eq!(a, w, "worker count {} changed the fault-laden trajectory", workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_baseline_is_also_deterministic_and_safe(
        stream_seed in 0u64..1000,
    ) {
        let evs = events(stream_seed, 200);
        let a = run_checked(PlacementPolicy::Random(5), 0, 1, &evs);
        let b = run_checked(PlacementPolicy::Random(5), 0, 1, &evs);
        prop_assert_eq!(a, b);
        // A different placement seed is a genuinely different service.
        let c = run_checked(PlacementPolicy::Random(6), 0, 1, &evs);
        prop_assert!(a.0 != c.0, "random seed must matter");
    }
}

// ------------------------------------------------------ hostile shapes

/// The adversarial stream shapes, by index: heavy-tailed tenant sizes,
/// flash-crowd surges, correlated arrival batches, correlated
/// switch-level failures, and the cross-pod adversarial pattern.
const N_SHAPES: u8 = 5;

/// A merged service stream for one adversarial shape. Shapes 0–2 and 4
/// reshape the tenant stream; shape 3 keeps nominal tenants and turns
/// the network stream into correlated whole-switch incidents.
fn shape_events(shape: u8, stream_seed: u64, net_seed: u64, n: usize) -> Vec<ServiceEvent> {
    let mut gen = WorkloadGenConfig {
        tasks_min: 2,
        tasks_max: 5,
        mean_interarrival: 10 * SECS,
        ..Default::default()
    };
    match shape {
        0 => {
            gen.tasks_max = 12;
            gen.heavy_tail = Some(HeavyTailConfig::default());
        }
        1 => {
            gen.flash_crowd = Some(FlashCrowdConfig {
                mean_time_between: 120 * SECS,
                peak_multiplier: 10.0,
                onset: 2 * SECS,
                decay: 30 * SECS,
            });
        }
        2 => {
            gen.correlated_batches = Some(CorrelatedBatchConfig {
                mean_time_between: 60 * SECS,
                size_min: 5,
                size_max: 9,
                window: 2 * SECS,
            });
        }
        3 => {}
        4 => {
            gen.patterns = vec![AppPattern::CrossPod];
        }
        _ => unreachable!("shape index"),
    }
    let cfg = WorkloadStreamConfig { gen, mean_intensity_change: 10 * SECS, ..Default::default() };
    let tenants: Vec<TenantEvent> = WorkloadStream::new(cfg, stream_seed).take(n).collect();
    let horizon = tenants.last().map_or(0, |e| e.at);
    let topo = test_tree();
    let net_cfg = NetworkEventStreamConfig {
        n_links: topo.link_count() as u32,
        mean_time_between_incidents: 20 * SECS,
        switch_failures: (shape == 3).then(|| SwitchFailureConfig {
            groups: switch_link_groups(&topo, 2),
            switch_prob: 0.7,
        }),
        ..Default::default()
    };
    let network: Vec<NetworkEvent> =
        NetworkEventStream::new(net_cfg, net_seed).take_while(|e| e.at <= horizon).collect();
    merge_events(tenants, network)
}

proptest! {
    // The hostile-shape chaos suite: every adversarial stream shape
    // must keep the safety invariants after every event and replay
    // bit-identically across repeats and solver worker counts 1/2/8.
    // CI re-runs it at PROPTEST_CASES=256.
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(5)))]
    #[test]
    fn shape_runs_are_deterministic_and_safe(
        shape in 0u8..N_SHAPES,
        stream_seed in 0u64..1000,
        net_seed in 0u64..1000,
    ) {
        let evs = shape_events(shape, stream_seed, net_seed, 150);
        let a = run_checked_faults(0, 7, &evs);
        let b = run_checked_faults(0, 7, &evs);
        prop_assert_eq!(a, b, "shape {} must replay bit-identically", shape);
        for workers in [1usize, 2, 8] {
            let w = run_checked_faults(workers, 7, &evs);
            prop_assert_eq!(a, w, "worker count {} changed shape {}'s trajectory", workers, shape);
        }
    }
}

#[test]
fn every_shape_smokes_through_a_long_run() {
    // One deterministic longer run per shape: the stream must survive
    // end to end with invariants intact, and the shape must actually
    // fire (arrivals happen, and for shape 3 correlated incidents hit).
    for shape in 0..N_SHAPES {
        let evs = shape_events(shape, 11, 13, 400);
        let (hash, network_events, _, _) = run_checked_faults(0, 5, &evs);
        assert_ne!(hash, 0, "shape {shape} produced a trajectory");
        if shape == 3 {
            assert!(network_events > 0, "switch-failure shape must hit the network");
            // Correlated incident: at least one instant with 2+ fails.
            let fails: Vec<_> = evs
                .iter()
                .filter_map(|e| match e {
                    ServiceEvent::Network(n)
                        if matches!(n.kind, choreo_repro::profile::NetworkEventKind::LinkFail) =>
                    {
                        Some(n.at)
                    }
                    _ => None,
                })
                .collect();
            assert!(
                fails.windows(2).any(|w| w[0] == w[1]),
                "at least one correlated multi-link incident in the stream"
            );
        }
    }
}

// ------------------------------------------- satellite-bug regressions

/// An application no host can run: per-task CPU above the per-host
/// capacity, so placement always fails and the tenant queues/rejects.
fn infeasible_app(name: &str) -> AppProfile {
    let mut m = TrafficMatrix::zeros(2);
    m.set(0, 1, 1_000_000);
    AppProfile::new(name, vec![64.0, 64.0], m, 0)
}

#[test]
fn depart_after_reject_is_not_counted_as_a_departure() {
    // Regression (PR 9): `depart` used to bump `stats.departures` and
    // the metric counter before discovering the tenant had been
    // rejected at arrival, so rejected tenants' Depart events
    // overcounted departures against admissions.
    let mut svc = service(PlacementPolicy::Greedy, 0, 1);
    let cap = svc.config().queue_capacity as u64;
    // Fill the wait queue with unplaceable tenants, then overflow it.
    for id in 0..=cap {
        svc.step(&TenantEvent {
            at: 10 + id,
            tenant: id,
            kind: TenantEventKind::Arrive { app: Box::new(infeasible_app("stuck")) },
        });
    }
    let s = svc.stats();
    assert_eq!((s.queued, s.rejected), (cap, 1), "queue full, last arrival rejected");
    // Depart of the REJECTED tenant: nothing was ever admitted or
    // queued for it, so nothing departs.
    svc.step(&TenantEvent { at: 100, tenant: cap, kind: TenantEventKind::Depart });
    assert_eq!(svc.stats().departures, 0, "depart-after-reject is a no-op");
    // Depart of a QUEUED tenant is a real teardown (queued-drop).
    svc.step(&TenantEvent { at: 110, tenant: 0, kind: TenantEventKind::Depart });
    assert_eq!(svc.stats().departures, 1, "queued-drop counts");
    svc.check_invariants();
    // The no-op is still digested: a run with the phantom Depart and a
    // run without it must not collide on the same trajectory hash.
    let run = |with_phantom: bool| {
        let mut svc = service(PlacementPolicy::Greedy, 0, 1);
        for id in 0..=cap {
            svc.step(&TenantEvent {
                at: 10 + id,
                tenant: id,
                kind: TenantEventKind::Arrive { app: Box::new(infeasible_app("stuck")) },
            });
        }
        if with_phantom {
            svc.step(&TenantEvent { at: 100, tenant: cap, kind: TenantEventKind::Depart });
        }
        svc.stats().trace_hash()
    };
    assert_ne!(run(true), run(false), "phantom departs stay visible to the digest");
}

#[test]
fn queued_tenant_intensity_survives_to_queue_admit() {
    // Regression (PR 9): `set_intensity` silently dropped the event for
    // tenants waiting in the queue and `admit` hard-coded intensity 1,
    // so a tenant admitted via retry ran at the wrong intensity for its
    // whole life (the stream never resends the change).
    let topo = Arc::new(test_tree());
    let routes = Arc::new(RouteTable::new(&topo));
    let cfg =
        OnlineConfig { workers: 0, candidate_hosts: 16, queue_capacity: 4, ..Default::default() };
    let mut svc = SchedulerBuilder::new(topo, routes).config(cfg).seed(1).build();
    let cores = svc.machines().cpu[0];
    let n_hosts = svc.machines().len();
    // Tenant 0 fills every core of every host.
    let mut m = TrafficMatrix::zeros(n_hosts);
    m.set(0, 1, 1_000_000);
    let filler = AppProfile::new("filler", vec![cores; n_hosts], m, 0);
    svc.step(&TenantEvent {
        at: 10,
        tenant: 0,
        kind: TenantEventKind::Arrive { app: Box::new(filler) },
    });
    assert_eq!(svc.active_tenants(), 1, "filler admitted");
    // Tenant 1 cannot fit and queues; its two tasks need separate hosts
    // once admitted (per-task CPU = a whole host), so its transfer is
    // networked and the intensity is observable as a flow count.
    let mut m = TrafficMatrix::zeros(2);
    m.set(0, 1, 5_000_000);
    let waiter = AppProfile::new("waiter", vec![cores, cores], m, 0);
    svc.step(&TenantEvent {
        at: 20,
        tenant: 1,
        kind: TenantEventKind::Arrive { app: Box::new(waiter) },
    });
    assert_eq!(svc.queue_len(), 1, "waiter queued");
    // The intensity change lands while tenant 1 is still waiting.
    svc.step(&TenantEvent {
        at: 30,
        tenant: 1,
        kind: TenantEventKind::SetIntensity { intensity: 3 },
    });
    assert_eq!(svc.tenant_intensity(1), None, "still queued, not running");
    // Departure frees the cluster; the retry admits tenant 1 — at the
    // intensity it asked for, not the hard-coded 1.
    svc.step(&TenantEvent { at: 40, tenant: 0, kind: TenantEventKind::Depart });
    assert_eq!(svc.queue_len(), 0, "waiter admitted on retry");
    assert_eq!(svc.tenant_intensity(1), Some(3), "queued intensity applied at QueueAdmit");
    // check_invariants asserts every networked transfer carries exactly
    // `intensity` flows — the round trip is structurally consistent.
    svc.check_invariants();
    let placement = svc.tenant_placement(1).expect("running");
    assert_ne!(
        placement.assignment[0], placement.assignment[1],
        "waiter's transfer is networked, so the intensity was observable"
    );
}

#[test]
fn long_run_reaches_steady_state_churn() {
    // One longer deterministic run as a smoke test that all lifecycle
    // paths (admission, queueing, departure retries, intensity changes,
    // migration passes) actually fire under the default stream.
    let evs = events(11, 900);
    let mut svc = service(PlacementPolicy::Greedy, 0, 3);
    for ev in &evs {
        svc.step(ev);
    }
    svc.check_invariants();
    let s = svc.stats();
    assert_eq!(s.events, 900);
    assert!(s.admitted > 20, "admissions: {}", s.admitted);
    assert!(s.departures > 20, "departures: {}", s.departures);
    assert!(s.queued > 0, "the saturated cluster must exercise the wait queue");
    assert!(s.intensity_changes > 20, "intensity changes: {}", s.intensity_changes);
    assert!(s.migration_passes > 10, "migration passes: {}", s.migration_passes);
    assert!(s.departed > 0 && s.mean_departed_rate_bps().unwrap() > 0.0);
}
