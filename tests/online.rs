//! Property tests for the online placement service: whole service runs
//! are deterministic (bit-identical across repeats and solver worker
//! counts), and admission never violates the capacity / queue / validity
//! invariants, at any point of any run.

use std::sync::Arc;

use choreo_repro::online::{
    DriftConfig, MigrationConfig, OnlineConfig, OnlineScheduler, PlacementPolicy, SchedulerBuilder,
};
use choreo_repro::profile::{
    merge_events, NetworkEvent, NetworkEventStream, NetworkEventStreamConfig, ServiceEvent,
    TenantEvent, WorkloadGenConfig, WorkloadStream, WorkloadStreamConfig,
};
use choreo_repro::topology::{MultiRootedTreeSpec, RouteTable, Topology, SECS};
use proptest::prelude::*;

/// A small pod-structured tree (4 pods × 2 ToRs × 2 hosts = 16 hosts):
/// real shard structure so the worker-count property exercises the
/// sharded solve path, small enough for many property cases.
fn test_tree() -> Topology {
    MultiRootedTreeSpec {
        cores: 2,
        pods: 4,
        aggs_per_pod: 1,
        tors_per_pod: 2,
        hosts_per_tor: 2,
        ..Default::default()
    }
    .build()
}

/// An offered load well above the 16-host cluster's capacity: the queue
/// and rejection paths stay busy, which is exactly what the invariant
/// checks want to see.
fn events(seed: u64, n: usize) -> Vec<TenantEvent> {
    let cfg = WorkloadStreamConfig {
        gen: WorkloadGenConfig {
            tasks_min: 2,
            tasks_max: 5,
            mean_interarrival: 10 * SECS,
            ..Default::default()
        },
        mean_intensity_change: 10 * SECS,
        ..Default::default()
    };
    WorkloadStream::new(cfg, seed).take(n).collect()
}

fn service(policy: PlacementPolicy, workers: usize, seed: u64) -> OnlineScheduler {
    let topo = Arc::new(test_tree());
    let routes = Arc::new(RouteTable::new(&topo));
    let cfg = OnlineConfig {
        policy,
        workers,
        candidate_hosts: 8,
        queue_capacity: 4,
        migration: MigrationConfig { cadence: Some(15 * SECS), ..Default::default() },
        ..Default::default()
    };
    SchedulerBuilder::new(topo, routes).config(cfg).seed(seed).build()
}

/// Run a full service over `evs`, checking the safety invariants after
/// every event, and return the trajectory digest plus headline counters.
fn run_checked(
    policy: PlacementPolicy,
    workers: usize,
    seed: u64,
    evs: &[TenantEvent],
) -> (u64, u64, u64, u64) {
    let mut svc = service(policy, workers, seed);
    for ev in evs {
        svc.step(ev);
        svc.check_invariants();
    }
    let s = svc.stats();
    (s.trace_hash(), s.admitted + s.queue_admitted, s.rejected, s.migrations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn service_runs_are_deterministic_and_safe(
        stream_seed in 0u64..1000,
        sim_seed in 0u64..1000,
    ) {
        let evs = events(stream_seed, 250);
        // Admission invariants hold after every event, and a repeat of
        // the run lands on the identical trajectory.
        let a = run_checked(PlacementPolicy::Greedy, 0, sim_seed, &evs);
        let b = run_checked(PlacementPolicy::Greedy, 0, sim_seed, &evs);
        prop_assert_eq!(a, b, "same stream + seed must replay bit-identically");
        // Sharded solve fan-out is a wall-clock knob, never a trajectory
        // knob: any worker count reproduces the warm-path run exactly.
        for workers in [1usize, 2, 8] {
            let w = run_checked(PlacementPolicy::Greedy, workers, sim_seed, &evs);
            prop_assert_eq!(a, w, "worker count {} changed the trajectory", workers);
        }
    }
}

/// A fault-laden service stream: the tenant events of [`events`] merged
/// with a seeded [`NetworkEventStream`] over the test tree's links,
/// cut at the tenant stream's horizon.
fn fault_events(stream_seed: u64, net_seed: u64, n: usize) -> Vec<ServiceEvent> {
    let tenants = events(stream_seed, n);
    let horizon = tenants.last().map_or(0, |e| e.at);
    let cfg = NetworkEventStreamConfig {
        n_links: test_tree().link_count() as u32,
        mean_time_between_incidents: 20 * SECS,
        ..Default::default()
    };
    let network: Vec<NetworkEvent> =
        NetworkEventStream::new(cfg, net_seed).take_while(|e| e.at <= horizon).collect();
    merge_events(tenants, network)
}

/// Run a full service over a merged tenant + network stream with drift
/// re-measurement on, checking the safety invariants after every event,
/// and return the trajectory digest plus headline counters.
fn run_checked_faults(workers: usize, seed: u64, evs: &[ServiceEvent]) -> (u64, u64, u64, u64) {
    let topo = Arc::new(test_tree());
    let routes = Arc::new(RouteTable::new(&topo));
    let cfg = OnlineConfig {
        workers,
        candidate_hosts: 8,
        queue_capacity: 4,
        migration: MigrationConfig { cadence: Some(15 * SECS), ..Default::default() },
        drift: DriftConfig { cadence: Some(10 * SECS), ..Default::default() },
        ..Default::default()
    };
    let mut svc = SchedulerBuilder::new(topo, routes).config(cfg).seed(seed).build();
    for ev in evs {
        svc.service_step(ev);
        svc.check_invariants();
    }
    let s = svc.stats();
    (s.trace_hash(), s.network_events, s.drift_detected, s.failure_migrations + s.migrations)
}

proptest! {
    // The chaos suite: CI re-runs it at PROPTEST_CASES=256.
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(6)))]
    #[test]
    fn fault_laden_runs_are_deterministic_and_safe(
        stream_seed in 0u64..1000,
        net_seed in 0u64..1000,
    ) {
        let evs = fault_events(stream_seed, net_seed, 200);
        // The stream must actually carry faults, or the property is
        // vacuous.
        prop_assert!(evs.iter().any(|e| matches!(e, ServiceEvent::Network(_))));
        // Invariants hold after every tenant AND network event, and the
        // whole fault-laden trajectory replays bit-identically.
        let a = run_checked_faults(0, 7, &evs);
        let b = run_checked_faults(0, 7, &evs);
        prop_assert_eq!(a, b, "same streams + seed must replay bit-identically");
        prop_assert!(a.1 > 0, "network events must have been consumed");
        // Worker count remains a wall-clock knob under faults too: the
        // capacity dirty window re-solves bit-identical at any fan-out.
        for workers in [1usize, 2, 8] {
            let w = run_checked_faults(workers, 7, &evs);
            prop_assert_eq!(a, w, "worker count {} changed the fault-laden trajectory", workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_baseline_is_also_deterministic_and_safe(
        stream_seed in 0u64..1000,
    ) {
        let evs = events(stream_seed, 200);
        let a = run_checked(PlacementPolicy::Random(5), 0, 1, &evs);
        let b = run_checked(PlacementPolicy::Random(5), 0, 1, &evs);
        prop_assert_eq!(a, b);
        // A different placement seed is a genuinely different service.
        let c = run_checked(PlacementPolicy::Random(6), 0, 1, &evs);
        prop_assert!(a.0 != c.0, "random seed must matter");
    }
}

#[test]
fn long_run_reaches_steady_state_churn() {
    // One longer deterministic run as a smoke test that all lifecycle
    // paths (admission, queueing, departure retries, intensity changes,
    // migration passes) actually fire under the default stream.
    let evs = events(11, 900);
    let mut svc = service(PlacementPolicy::Greedy, 0, 3);
    for ev in &evs {
        svc.step(ev);
    }
    svc.check_invariants();
    let s = svc.stats();
    assert_eq!(s.events, 900);
    assert!(s.admitted > 20, "admissions: {}", s.admitted);
    assert!(s.departures > 20, "departures: {}", s.departures);
    assert!(s.queued > 0, "the saturated cluster must exercise the wait queue");
    assert!(s.intensity_changes > 20, "intensity changes: {}", s.intensity_changes);
    assert!(s.migration_passes > 10, "migration passes: {}", s.migration_passes);
    assert!(s.departed > 0 && s.mean_departed_rate_bps().unwrap() > 0.0);
}
