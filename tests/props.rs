//! Property-based tests over the core data structures and invariants.

use std::sync::Arc;

use choreo_repro::flowsim::{
    hop_resource, max_min_rates, FlowArena, FlowKey, FlowSim, FlowSlot, FlowStatus, MaxMinSolver,
    ProbeBatch, ResourcePartition, ScenarioPool, ShardedSolver, SolverMode,
};
use choreo_repro::lp::{solve_lp, Lp, LpOutcome, Relation};
use choreo_repro::measure::{NetworkSnapshot, RateModel};
use choreo_repro::place::greedy::GreedyPlacer;
use choreo_repro::place::problem::{validate, Machines, NetworkLoad};
use choreo_repro::profile::{
    switch_link_groups, AppPattern, AppProfile, CorrelatedBatchConfig, FlashCrowdConfig,
    HeavyTailConfig, NetworkEventKind, NetworkEventStream, NetworkEventStreamConfig,
    SwitchFailureConfig, TenantEventKind, TrafficMatrix, WorkloadStream, WorkloadStreamConfig,
};
use choreo_repro::topology::route::splitmix64;
use choreo_repro::topology::{
    dumbbell, two_rack, LinkSpec, MultiRootedTreeSpec, RouteTable, Topology, GBIT, MICROS, SECS,
};
use choreo_repro::wire::ControlMsg;
use proptest::prelude::*;

// ---------------------------------------------------------------- max-min

proptest! {
    #[test]
    fn maxmin_never_exceeds_capacity_and_is_work_conserving(
        caps in prop::collection::vec(1.0f64..1000.0, 1..6),
        flow_paths in prop::collection::vec(prop::collection::vec(0usize..6, 1..4), 1..12),
    ) {
        let nr = caps.len();
        let flows: Vec<Vec<u32>> = flow_paths
            .iter()
            .map(|p| {
                let mut f: Vec<u32> = p.iter().map(|r| (r % nr) as u32).collect();
                f.sort_unstable();
                f.dedup(); // a flow crosses each resource at most once
                f
            })
            .collect();
        let rates = max_min_rates(&caps, &flows);
        // 1. No resource over capacity.
        for (r, cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&(r as u32)))
                .map(|(_, rate)| *rate)
                .sum();
            prop_assert!(used <= cap + 1e-6, "resource {r}: {used} > {cap}");
        }
        // 2. Every flow gets a strictly positive rate.
        for (i, rate) in rates.iter().enumerate() {
            prop_assert!(*rate > 0.0, "flow {i} starved");
        }
        // 3. Work conservation: every flow crosses at least one saturated
        //    resource (otherwise its rate could grow -> not max-min).
        for (f, rate) in flows.iter().zip(&rates) {
            let bottlenecked = f.iter().any(|&r| {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.contains(&r))
                    .map(|(_, x)| *x)
                    .sum();
                used >= caps[r as usize] - 1e-6
            });
            prop_assert!(bottlenecked, "flow with rate {rate} has slack everywhere");
        }
    }
}

/// From-scratch reference solve: plain progressive filling with a linear
/// bottleneck scan, freezing whole rounds with the same order-insensitive
/// arithmetic as the production solver (`slack -= count × level`). The
/// incremental arena must reproduce these rates **bit for bit**.
fn reference_max_min(caps: &[f64], flows: &[Vec<u32>]) -> Vec<f64> {
    let nr = caps.len();
    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut slack = caps.to_vec();
    let mut users = vec![0u32; nr];
    for f in flows {
        for &r in f {
            users[r as usize] += 1;
        }
    }
    let mut remaining = flows.len();
    while remaining > 0 {
        // Minimal (share, resource id), like the solver's heap order.
        let mut best: Option<(f64, usize)> = None;
        for r in 0..nr {
            if users[r] > 0 {
                let share = (slack[r] / users[r] as f64).max(0.0);
                if best.is_none_or(|(s, _)| share < s) {
                    best = Some((share, r));
                }
            }
        }
        let Some((level, b)) = best else { break };
        let mut delta = vec![0u32; nr];
        for (fi, f) in flows.iter().enumerate() {
            if frozen[fi] || !f.contains(&(b as u32)) {
                continue;
            }
            frozen[fi] = true;
            rate[fi] = level;
            remaining -= 1;
            for &r in f {
                delta[r as usize] += 1;
            }
        }
        for r in 0..nr {
            if delta[r] > 0 {
                users[r] -= delta[r];
                slack[r] -= delta[r] as f64 * level;
            }
        }
    }
    rate
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn incremental_arena_bitmatches_reference_solve(
        caps in prop::collection::vec(1.0f64..1000.0, 1..7),
        ops in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(0usize..7, 1..5)),
            1..48,
        ),
    ) {
        let nr = caps.len();
        let mut arena = FlowArena::new(nr);
        let mut solver = MaxMinSolver::new();
        let mut rates = Vec::new();
        // Live flows: (slot, resource list), in insertion order.
        let mut live: Vec<(FlowSlot, Vec<u32>)> = Vec::new();
        for (opno, (remove, path)) in ops.iter().enumerate() {
            if *remove && !live.is_empty() {
                let victim = path[0] % live.len();
                let (slot, _) = live.swap_remove(victim);
                arena.remove(slot);
            } else {
                let mut f: Vec<u32> = path.iter().map(|r| (r % nr) as u32).collect();
                f.sort_unstable();
                f.dedup();
                let slot = arena.add(&f);
                live.push((slot, f));
            }
            arena.check_invariants();
            solver.solve(&caps, &arena, &mut rates);
            let specs: Vec<Vec<u32>> = live.iter().map(|(_, f)| f.clone()).collect();
            let reference = reference_max_min(&caps, &specs);
            for ((slot, _), want) in live.iter().zip(&reference) {
                let got = rates[slot.0 as usize];
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "op {opno}: slot {} got {got}, reference {want}", slot.0
                );
            }
            // Capacity and max-min sanity on the incremental result.
            for (r, cap) in caps.iter().enumerate() {
                let used: f64 = live
                    .iter()
                    .filter(|(_, f)| f.contains(&(r as u32)))
                    .map(|(s, _)| rates[s.0 as usize])
                    .sum();
                prop_assert!(used <= cap + 1e-6, "resource {r} over capacity: {used}");
            }
            for (s, f) in &live {
                prop_assert!(rates[s.0 as usize] > 0.0, "flow starved");
                let bottlenecked = f.iter().any(|&r| {
                    let used: f64 = live
                        .iter()
                        .filter(|(_, g)| g.contains(&r))
                        .map(|(s2, _)| rates[s2.0 as usize])
                        .sum();
                    used >= caps[r as usize] - 1e-6
                });
                prop_assert!(bottlenecked, "flow could still be raised: not max-min");
            }
        }
    }
}

// ------------------------------------------------- warm-started solves

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn chained_warm_solves_bitmatch_cold_solves_under_churn(
        caps in prop::collection::vec(1.0f64..1000.0, 2..9),
        ops in prop::collection::vec(
            (0u8..6, prop::collection::vec(0usize..9, 1..5)),
            1..40,
        ),
    ) {
        // One warm-chaining solver rides a mutating arena through adds,
        // removes, replace-style churn (remove-then-re-add recycles the
        // slot), resource-space growth, capacity retuning (the network
        // moved under the flows) and interleaved probes; after every
        // step its output must bit-match a from-scratch cold solve of the
        // same arena. Start with part of the resource space hidden so
        // grow_resources is exercised mid-chain.
        let mut caps = caps;
        let mut nr = caps.len().div_ceil(2);
        let mut arena = FlowArena::new(nr);
        let mut warm = MaxMinSolver::new();
        let mut rates = Vec::new();
        let mut live: Vec<(FlowSlot, Vec<u32>)> = Vec::new();
        let norm = |path: &Vec<usize>, nr: usize| -> Vec<u32> {
            let mut f: Vec<u32> = path.iter().map(|r| (r % nr) as u32).collect();
            f.sort_unstable();
            f.dedup();
            f
        };
        for (opno, (op, path)) in ops.iter().enumerate() {
            match op {
                // Remove (when possible), else add.
                0 if !live.is_empty() => {
                    let victim = path[0] % live.len();
                    let (slot, _) = live.swap_remove(victim);
                    arena.remove(slot);
                }
                // Replace: remove a victim and immediately re-add a
                // different path — the add recycles the vacated slot.
                1 if !live.is_empty() => {
                    let victim = path[0] % live.len();
                    let (slot, _) = live.swap_remove(victim);
                    arena.remove(slot);
                    let f = norm(path, nr);
                    let slot2 = arena.add(&f);
                    prop_assert_eq!(slot2, slot, "recycled slot expected");
                    live.push((slot2, f));
                }
                // Grow the resource id space (no-op once at full size).
                2 => {
                    nr = (nr + 1).min(caps.len());
                    arena.grow_resources(nr);
                }
                // Retune a visible resource's capacity: the dirty
                // capacity window must carry the change into the next
                // warm solve (a missed mark would leave stale rates).
                3 => {
                    let r = path[0] % nr;
                    caps[r] = 1.0 + (path.iter().sum::<usize>() as f64 * 37.0) % 999.0;
                    arena.touch_resource(r as u32);
                }
                // Add a flow.
                _ => {
                    let f = norm(path, nr);
                    let slot = arena.add(&f);
                    live.push((slot, f));
                }
            }
            arena.check_invariants();
            warm.solve_warm(&caps[..nr.max(arena.n_resources())], &mut arena, &mut rates);
            let mut cold = MaxMinSolver::new();
            let mut cold_rates = Vec::new();
            cold.solve(&caps[..arena.n_resources()], &arena, &mut cold_rates);
            prop_assert_eq!(rates.len(), cold_rates.len());
            for (slot, got) in rates.iter().enumerate() {
                prop_assert_eq!(
                    got.to_bits(), cold_rates[slot].to_bits(),
                    "op {opno}: slot {slot} warm {} vs cold {}", got, cold_rates[slot]
                );
            }
            // The warm-maintained log also serves probes: a what-if probe
            // against it must bit-match adding the candidate for real.
            let cand = norm(path, nr);
            let got = warm.probe(&caps[..arena.n_resources()], &arena, &cand);
            let mut ref_arena = arena.clone();
            let probe_slot = ref_arena.add(&cand);
            let mut ref_solver = MaxMinSolver::new();
            let mut ref_rates = Vec::new();
            ref_solver.solve(&caps[..ref_arena.n_resources()], &ref_arena, &mut ref_rates);
            prop_assert_eq!(
                got.to_bits(), ref_rates[probe_slot.0 as usize].to_bits(),
                "op {opno}: probe over the warm log diverged"
            );
        }
    }
}

// --------------------------------------------------------- sharded solves

/// The test topologies for the sharded solve: the Fig. 3(a) dumbbell
/// (degenerate partition: every host its own pod, all flows boundary),
/// the Fig. 3(b) two-rack cloud (two pods joined by one agg), and the
/// Fig. 5 multi-rooted tree (three pods under two cores, the intended
/// workload), optionally with the second aggregation tier.
fn sharded_topology(kind: u8) -> Topology {
    let edge = LinkSpec::new(GBIT, 5 * MICROS);
    let fabric = LinkSpec::new(10.0 * GBIT, 5 * MICROS);
    match kind % 4 {
        0 => dumbbell(4, edge, LinkSpec::new(GBIT, 20 * MICROS)),
        1 => two_rack(4, edge, fabric),
        k => MultiRootedTreeSpec {
            cores: 2,
            pods: 3,
            aggs_per_pod: 2,
            tors_per_pod: 2,
            hosts_per_tor: 2,
            second_agg_tier: k == 3,
            ..Default::default()
        }
        .build(),
    }
}

proptest! {
    // CI cranks this suite with PROPTEST_CASES (read explicitly, so the
    // override works with real proptest's precedence too: env beats an
    // explicit with_cases only because we ask it to here).
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(48)))]
    #[test]
    fn sharded_solves_bitmatch_cold_solves_under_churn(
        topo_kind in 0u8..4,
        ops in prop::collection::vec((0u8..8, any::<u16>(), any::<u16>(), any::<u16>()), 1..24),
    ) {
        // Three independent sharded stacks (1, 2 and 8 workers) chase the
        // same churn through adds, removes, replace-recycled-slot churn,
        // resource-space growth (late hoses land on the spine), capacity
        // retuning (link degradations and recoveries) and
        // interleaved probes; after every event each stack's rates must
        // bit-match a cold solve of the same flow set, on every topology —
        // including the dumbbell, whose partition degenerates to
        // singleton pods with every flow on the boundary. Each stack
        // drives its own arena replica: the incremental split chains on
        // the arena's dirty window, whose consumer must be unique per
        // arena (the documented warm-solve contract). The replicas see
        // identical op sequences, so their slot assignments stay in
        // lockstep (asserted).
        let topo = sharded_topology(topo_kind);
        let routes = RouteTable::new(&topo);
        let part = ResourcePartition::for_topology(&topo);
        let hosts = topo.hosts().to_vec();
        let n_links2 = topo.link_count() * 2;
        let mut caps: Vec<f64> =
            topo.links().iter().flat_map(|l| [l.spec.rate_bps, l.spec.rate_bps]).collect();
        caps.extend(std::iter::repeat_n(4.2e9, hosts.len())); // loopbacks
        // Replicas 0-2 belong to the sharded stacks; replica 3 is the
        // cold-reference arena (cold solves never touch dirty windows).
        let mut arenas: Vec<FlowArena> = (0..4).map(|_| FlowArena::new(caps.len())).collect();
        let mut hoses: Vec<u32> = Vec::new();
        let mut live: Vec<FlowSlot> = Vec::new();
        let mut stacks: Vec<(ShardedSolver, MaxMinSolver, Vec<f64>)> = [1usize, 2, 8]
            .into_iter()
            .map(|w| (ShardedSolver::new(w), MaxMinSolver::new(), Vec::new()))
            .collect();
        let mut cold = MaxMinSolver::new();
        let mut cold_rates = Vec::new();
        // Path of a hypothetical flow a→b (loopback when co-located),
        // optionally capped by the latest hose.
        let path_of = |a: u16, b: u16, h: u64, hoses: &[u32], with_hose: bool| -> Vec<u32> {
            let src = hosts[a as usize % hosts.len()];
            let dst = hosts[b as usize % hosts.len()];
            let mut res: Vec<u32> = if src == dst {
                vec![(n_links2 + a as usize % hosts.len()) as u32]
            } else {
                routes.path_for_flow(src, dst, splitmix64(h)).hops.iter().map(hop_resource).collect()
            };
            if with_hose {
                if let Some(&hose) = hoses.last() {
                    res.push(hose);
                }
            }
            res
        };
        for (opno, &(op, a, b, c)) in ops.iter().enumerate() {
            let h = (opno as u64) << 32 | (a as u64) << 16 | b as u64;
            match op {
                0 if !live.is_empty() => {
                    let victim = a as usize % live.len();
                    let slot = live.swap_remove(victim);
                    for arena in &mut arenas {
                        arena.remove(slot);
                    }
                }
                1 if !live.is_empty() => {
                    // Replace: the add recycles the vacated slot.
                    let victim = a as usize % live.len();
                    let slot = live.swap_remove(victim);
                    let path = path_of(b, c, h, &hoses, false);
                    for arena in &mut arenas {
                        arena.remove(slot);
                        let slot2 = arena.add(&path);
                        prop_assert_eq!(slot2, slot, "recycled slot expected");
                    }
                    live.push(slot);
                }
                2 => {
                    // Register a hose: a resource the partition has never
                    // seen (it maps to the spine shard).
                    let id = arenas[0].n_resources();
                    for arena in &mut arenas {
                        arena.grow_resources(id + 1);
                    }
                    caps.push(2.5e8 + 1e6 * (a % 64) as f64);
                    hoses.push(id as u32);
                }
                4 => {
                    // Retune a live resource's capacity (a link degraded
                    // or recovered mid-run): every replica marks it in
                    // its dirty window, and the sharded solves must
                    // re-agree with cold at the new capacity.
                    let r = a as usize % caps.len();
                    caps[r] = 1e8 + 1e6 * (b % 512) as f64;
                    for arena in &mut arenas {
                        arena.touch_resource(r as u32);
                    }
                }
                _ => {
                    let path = path_of(a, b, h, &hoses, op == 3 && !hoses.is_empty());
                    let mut slot = None;
                    for arena in &mut arenas {
                        let s = arena.add(&path);
                        prop_assert!(slot.is_none_or(|prev| prev == s), "replicas diverged");
                        slot = Some(s);
                    }
                    live.push(slot.unwrap());
                }
            }
            arenas[3].check_invariants();
            cold.solve(&caps, &arenas[3], &mut cold_rates);
            for (i, (sharded, main, rates)) in stacks.iter_mut().enumerate() {
                sharded.solve_sharded(&caps, &mut arenas[i], &part, main, rates);
                prop_assert_eq!(rates.len(), cold_rates.len());
                for (slot, (got, want)) in rates.iter().zip(&cold_rates).enumerate() {
                    prop_assert_eq!(
                        got.to_bits(), want.to_bits(),
                        "op {opno} (stack {i}): slot {slot} sharded {} vs cold {}",
                        got, want
                    );
                }
            }
            // The reconciled log serves probes: a what-if over it must
            // bit-match adding the candidate for real.
            let cand = path_of(b, a, h ^ 0x51ED, &hoses, false);
            let mut ref_arena = arenas[3].clone();
            let probe_slot = ref_arena.add(&cand);
            let mut ref_solver = MaxMinSolver::new();
            let mut ref_rates = Vec::new();
            ref_solver.solve(&caps, &ref_arena, &mut ref_rates);
            for (i, (_, main, _)) in stacks.iter_mut().enumerate() {
                let got = main.probe(&caps, &arenas[i], &cand);
                prop_assert_eq!(
                    got.to_bits(), ref_rates[probe_slot.0 as usize].to_bits(),
                    "op {}: probe over the sharded log diverged", opno
                );
            }
        }
    }
}

// ---------------------------------------------- flow-record recycling

/// FNV-1a fold of one 64-bit word into a running digest.
fn fnv1a(digest: u64, word: u64) -> u64 {
    (digest ^ word).wrapping_mul(0x0000_0100_0000_01B3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(16)))]
    #[test]
    fn recycling_trajectory_bitmatches_unbounded_records(
        topo_kind in 0u8..4,
        ops in prop::collection::vec((0u8..4, any::<u16>(), any::<u16>(), 1u64..32), 1..20),
    ) {
        // Two sims per sharded worker count (1, 2, 8) replay the same
        // event program: one releases every completed flow's record as
        // soon as it retires (recycling), the other never releases —
        // the pre-recycling append-only record table. FNV-1a digests
        // over every observable (allocated-rate bits after each op,
        // delivered bytes and completion time of every flow when it is
        // harvested) must be identical across the two sims and across
        // all worker counts, while the recycling sim's record table
        // must stay at the peak concurrent flow count instead of
        // growing with flow history.
        let topo = Arc::new(sharded_topology(topo_kind));
        let routes = Arc::new(RouteTable::new(&topo));
        let loopback = LinkSpec::new(10.0 * GBIT, MICROS);
        let hosts = topo.hosts().to_vec();
        let mut digests: Vec<u64> = Vec::new();
        let mut started_total = 0usize;
        for workers in [1usize, 2, 8] {
            let mut recycle = FlowSim::new(topo.clone(), routes.clone(), loopback, 42);
            let mut unbounded = FlowSim::new(topo.clone(), routes.clone(), loopback, 42);
            recycle.set_solver_mode(SolverMode::sharded(workers));
            unbounded.set_solver_mode(SolverMode::sharded(workers));
            // Flows still tracked: (tag, key in recycle, key in unbounded).
            let mut live: Vec<(u64, FlowKey, FlowKey)> = Vec::new();
            let (mut dr, mut du) = (0xcbf29ce484222325u64, 0xcbf29ce484222325u64);
            let mut started = 0usize;
            for (opno, &(op, a, b, n)) in ops.iter().enumerate() {
                let t = (opno as u64 + 1) * 200_000;
                match op {
                    // Stop a tracked flow (else fall through to a start).
                    2 if !live.is_empty() => {
                        let (_, kr, ku) = live[a as usize % live.len()];
                        recycle.stop_flow_at(kr, recycle.now());
                        unbounded.stop_flow_at(ku, unbounded.now());
                    }
                    _ => {
                        let src = hosts[a as usize % hosts.len()];
                        let dst = hosts[b as usize % hosts.len()];
                        // op 1 starts an unbounded flow; others are
                        // bounded so they retire mid-run.
                        let bytes = (op != 1).then_some(n * 10_000);
                        let tag = opno as u64;
                        let kr = recycle.start_flow(src, dst, bytes, None, recycle.now(), tag);
                        let ku = unbounded.start_flow(src, dst, bytes, None, unbounded.now(), tag);
                        live.push((tag, kr, ku));
                        started += 1;
                    }
                }
                recycle.run_until(t);
                unbounded.run_until(t);
                // Digest the full observable state, then harvest + release
                // retired flows — at the same instant in both sims.
                live.retain(|&(tag, kr, ku)| {
                    dr = fnv1a(dr, recycle.rate_bps(kr).to_bits());
                    du = fnv1a(du, unbounded.rate_bps(ku).to_bits());
                    let done_r = matches!(recycle.status(kr), FlowStatus::Done(_));
                    let done_u = matches!(unbounded.status(ku), FlowStatus::Done(_));
                    assert_eq!(done_r, done_u, "op {opno}: sims disagree on flow {tag} status");
                    if done_r {
                        dr = fnv1a(dr, recycle.delivered_bytes(kr));
                        du = fnv1a(du, unbounded.delivered_bytes(ku));
                        dr = fnv1a(dr, recycle.completion_time(kr).unwrap());
                        du = fnv1a(du, unbounded.completion_time(ku).unwrap());
                        recycle.release_flow(kr);
                    }
                    !done_r
                });
                prop_assert_eq!(dr, du, "op {}: trajectories diverged", opno);
            }
            // Drain every remaining bounded flow, then harvest the rest.
            let end_r = recycle.run_to_completion();
            let end_u = unbounded.run_to_completion();
            prop_assert_eq!(end_r, end_u, "completion times diverged");
            for &(_, kr, ku) in &live {
                dr = fnv1a(dr, recycle.delivered_bytes(kr));
                du = fnv1a(du, unbounded.delivered_bytes(ku));
            }
            prop_assert_eq!(dr, du, "final digests diverged");
            digests.push(dr);
            // The memory claim: the unbounded sim's record table grew
            // with flow history; the recycling sim's stayed at the
            // concurrent population (live + not-yet-released retirees).
            prop_assert_eq!(unbounded.flow_records(), started);
            prop_assert!(
                recycle.flow_records() <= 2 * recycle.peak_active_flows().max(1),
                "{} records for peak {} concurrent flows",
                recycle.flow_records(),
                recycle.peak_active_flows()
            );
            started_total = started;
        }
        prop_assert!(started_total > 0);
        prop_assert!(
            digests.iter().all(|&d| d == digests[0]),
            "digest differs across worker counts: {:?}", digests
        );
    }
}

// ------------------------------------------------- batched what-if probes

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn batched_probes_bitmatch_per_candidate_solves_under_churn(
        caps in prop::collection::vec(1.0f64..1000.0, 1..7),
        ops in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(0usize..7, 1..5)),
            1..32,
        ),
        candidate_paths in prop::collection::vec(
            prop::collection::vec(0usize..7, 1..5),
            1..12,
        ),
    ) {
        let nr = caps.len();
        let norm = |path: &Vec<usize>| -> Vec<u32> {
            let mut f: Vec<u32> = path.iter().map(|r| (r % nr) as u32).collect();
            f.sort_unstable();
            f.dedup();
            f
        };
        // Build a churned arena (exercising slot/block recycling) so the
        // batch is evaluated against a non-trivial internal layout.
        let mut arena = FlowArena::new(nr);
        let mut live: Vec<(FlowSlot, Vec<u32>)> = Vec::new();
        for (remove, path) in &ops {
            if *remove && !live.is_empty() {
                let victim = path[0] % live.len();
                let (slot, _) = live.swap_remove(victim);
                arena.remove(slot);
            } else {
                let f = norm(path);
                let slot = arena.add(&f);
                live.push((slot, f));
            }
        }
        let mut batch = ProbeBatch::new();
        for c in &candidate_paths {
            batch.push(&norm(c));
        }
        let mut solver = MaxMinSolver::new();
        let (mut rates, mut out) = (Vec::new(), Vec::new());
        solver.solve_batch(&caps, &arena, &batch, &mut rates, &mut out);
        prop_assert_eq!(out.len(), candidate_paths.len());
        // Reference: each candidate joins a from-scratch arena for real.
        for (c, got) in candidate_paths.iter().zip(&out) {
            let mut ref_arena = FlowArena::new(nr);
            for (_, f) in &live {
                ref_arena.add(f);
            }
            let probe = ref_arena.add(&norm(c));
            let mut ref_solver = MaxMinSolver::new();
            let mut ref_rates = Vec::new();
            ref_solver.solve(&caps, &ref_arena, &mut ref_rates);
            let want = ref_rates[probe.0 as usize];
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "candidate {:?}: batched {} vs from-scratch {}", c, got, want
            );
        }
        // The batch left the arena untouched: the base solution still
        // bit-matches a fresh solve of the same flow set.
        let mut check = Vec::new();
        let mut fresh = MaxMinSolver::new();
        fresh.solve(&caps, &arena, &mut check);
        for (slot, _) in &live {
            prop_assert_eq!(
                rates[slot.0 as usize].to_bits(),
                check[slot.0 as usize].to_bits()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn scenario_pool_results_identical_for_any_worker_count(
        caps in prop::collection::vec(1.0f64..1000.0, 1..6),
        base_paths in prop::collection::vec(prop::collection::vec(0usize..6, 1..4), 0..10),
        scenario_paths in prop::collection::vec(prop::collection::vec(0usize..6, 1..4), 1..20),
    ) {
        let nr = caps.len();
        let norm = |path: &Vec<usize>| -> Vec<u32> {
            let mut f: Vec<u32> = path.iter().map(|r| (r % nr) as u32).collect();
            f.sort_unstable();
            f.dedup();
            f
        };
        let mut arena = FlowArena::new(nr);
        for p in &base_paths {
            arena.add(&norm(p));
        }
        let scenarios: Vec<Vec<u32>> = scenario_paths.iter().map(norm).collect();
        // Scenario: add a hypothetical flow, solve, score it, restore.
        let score = |ctx: &mut choreo_repro::flowsim::ScenarioCtx, path: &Vec<u32>| {
            let probe = ctx.arena.add(path);
            ctx.solver.solve(&caps, &ctx.arena, &mut ctx.rates);
            let rate = ctx.rates[probe.0 as usize];
            ctx.arena.remove(probe);
            rate.to_bits()
        };
        let serial = ScenarioPool::new(1).evaluate(&arena, &scenarios, score);
        let two = ScenarioPool::new(2).evaluate(&arena, &scenarios, score);
        let eight = ScenarioPool::new(8).evaluate(&arena, &scenarios, score);
        prop_assert_eq!(&serial, &two, "2 workers diverged");
        prop_assert_eq!(&serial, &eight, "8 workers diverged");
    }
}

// ------------------------------------------------------------- placement

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn greedy_placements_are_always_valid(
        n_tasks in 2usize..7,
        n_vms in 2usize..6,
        seed in 0u64..500,
        demands in prop::collection::vec(1u32..=8, 2..7),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = TrafficMatrix::zeros(n_tasks);
        for i in 0..n_tasks {
            for j in 0..n_tasks {
                if i != j && rng.gen_bool(0.5) {
                    m.set(i, j, rng.gen_range(1..1_000_000_000));
                }
            }
        }
        let cpu: Vec<f64> = (0..n_tasks)
            .map(|t| 0.5 * demands[t % demands.len()] as f64)
            .collect();
        let app = AppProfile::new("prop", cpu, m, 0);
        let machines = Machines::uniform(n_vms, 4.0);
        let mut rates = vec![0.0; n_vms * n_vms];
        for v in rates.iter_mut() {
            *v = rng.gen_range(1e8..4e9);
        }
        let model = if seed % 2 == 0 { RateModel::Hose } else { RateModel::Pipe };
        let snap = NetworkSnapshot::from_rates(n_vms, rates, model);
        match GreedyPlacer.place(&app, &machines, &snap, &NetworkLoad::new(n_vms)) {
            Ok(p) => {
                prop_assert!(validate(&app, &machines, &p).is_ok());
                prop_assert_eq!(p.assignment.len(), n_tasks);
            }
            Err(_) => {
                // Only acceptable when demand genuinely cannot fit.
                let total: f64 = app.cpu.iter().sum();
                let biggest = app.cpu.iter().cloned().fold(0.0, f64::max);
                prop_assert!(
                    total > n_vms as f64 * 4.0 || biggest > 4.0 ||
                    // or bin-packing fragmentation, which we accept
                    total > n_vms as f64 * 4.0 * 0.5,
                    "greedy failed on an easy instance: total {total}"
                );
            }
        }
    }
}

// ------------------------------------------------------------ wire format

proptest! {
    #[test]
    fn control_messages_roundtrip(
        train_id in any::<u64>(),
        bursts in 1u32..1000,
        burst_len in 1u32..5000,
        packet_bytes in 32u32..9000,
        gap in 0u64..10_000_000,
        port in 1u16..u16::MAX,
        ip in any::<[u8; 4]>(),
    ) {
        let msgs = vec![
            ControlMsg::PrepareReceive { train_id, bursts },
            ControlMsg::Ready { udp_port: port },
            ControlMsg::SendTrain {
                train_id,
                dest: (ip, port),
                bursts,
                burst_len,
                packet_bytes,
                gap_ns: gap,
            },
            ControlMsg::Sent { packets: train_id },
            ControlMsg::FetchReport { train_id },
        ];
        for m in msgs {
            let framed = m.encode();
            let decoded = ControlMsg::decode(&framed[4..]);
            prop_assert_eq!(decoded, Ok(m));
        }
    }

    #[test]
    fn probe_header_roundtrips(
        train_id in any::<u64>(),
        burst in any::<u32>(),
        idx in any::<u32>(),
        burst_len in any::<u32>(),
        sent_ns in any::<u64>(),
    ) {
        use choreo_repro::wire::ProbeHeader;
        let h = ProbeHeader { train_id, burst, idx, burst_len, sent_ns };
        let mut buf = bytes_mut();
        h.encode(&mut buf);
        prop_assert_eq!(ProbeHeader::decode(&buf), Some(h));
    }
}

fn bytes_mut() -> bytes::BytesMut {
    bytes::BytesMut::new()
}

// -------------------------------------------------------------- topology

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn tree_hop_counts_are_one_or_even(
        cores in 1usize..3,
        pods in 1usize..3,
        aggs in 1usize..3,
        tors in 1usize..3,
        hosts in 1usize..4,
        deep in any::<bool>(),
    ) {
        let spec = MultiRootedTreeSpec {
            cores,
            pods,
            aggs_per_pod: aggs,
            tors_per_pod: tors,
            hosts_per_tor: hosts,
            second_agg_tier: deep,
            ..Default::default()
        };
        let topo = spec.build();
        let routes = RouteTable::new(&topo);
        for &a in topo.hosts() {
            for &b in topo.hosts() {
                if a != b {
                    let h = routes.hop_count(a, b);
                    prop_assert!(h.is_multiple_of(2) && (2..=8).contains(&h), "hops {h}");
                }
            }
        }
    }
}

// ------------------------------------------------------------------- lp

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn lp_optimum_is_feasible_and_no_worse_than_origin(
        n in 1usize..5,
        objs in prop::collection::vec(-5.0f64..5.0, 1..5),
        rhs in prop::collection::vec(0.5f64..20.0, 1..4),
    ) {
        // Box-constrained LPs with <=-constraints through the origin:
        // always feasible (x = 0), never unbounded (finite boxes).
        let mut lp = Lp::new(n);
        for v in 0..n {
            lp.set_objective(v, objs[v % objs.len()]);
            lp.set_bounds(v, 0.0, 3.0);
        }
        for (k, r) in rhs.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> =
                (0..n).map(|v| (v, ((v + k) % 3) as f64)).collect();
            lp.add_constraint(coeffs, Relation::Le, *r);
        }
        match solve_lp(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(&s.x, 1e-6));
                prop_assert!(s.objective <= 1e-9, "origin is feasible with objective 0");
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }
}

// --------------------------------------------------------------- matrix

proptest! {
    #[test]
    fn traffic_matrix_transfer_order_is_total_and_descending(
        entries in prop::collection::vec((0usize..6, 0usize..6, 1u64..1_000_000), 0..20),
    ) {
        let mut m = TrafficMatrix::zeros(6);
        for (i, j, b) in entries {
            m.add(i, j, b);
        }
        let t = m.transfers_desc();
        for w in t.windows(2) {
            prop_assert!(w[0].2 >= w[1].2, "descending bytes");
        }
        let total: u64 = t.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(total, m.total_bytes());
        for &(i, j, b) in &t {
            prop_assert!(i != j && b > 0);
            prop_assert_eq!(m.bytes(i, j), b);
        }
    }
}

// ----------------------------------------------- adversarial shapes

/// A `WorkloadStreamConfig` with one adversarial shape switched on
/// (0 = heavy-tailed tenants, 1 = flash crowds, 2 = correlated batches,
/// 3 = cross-pod placement pattern) — the stream-level twin of the
/// scheduler-level shape suite in `tests/online.rs`.
fn shaped_stream_config(shape: u8) -> WorkloadStreamConfig {
    let mut cfg = WorkloadStreamConfig::default();
    cfg.gen.tasks_min = 2;
    cfg.gen.tasks_max = 6;
    cfg.gen.mean_interarrival = 5 * SECS;
    match shape {
        0 => {
            cfg.gen.tasks_max = 12;
            cfg.gen.heavy_tail = Some(HeavyTailConfig::default());
        }
        1 => {
            cfg.gen.flash_crowd = Some(FlashCrowdConfig {
                mean_time_between: 60 * SECS,
                peak_multiplier: 10.0,
                onset: 2 * SECS,
                decay: 20 * SECS,
            });
        }
        2 => {
            cfg.gen.correlated_batches = Some(CorrelatedBatchConfig {
                mean_time_between: 45 * SECS,
                size_min: 4,
                size_max: 9,
                window: 2 * SECS,
            });
        }
        _ => cfg.gen.patterns = vec![AppPattern::CrossPod],
    }
    cfg
}

proptest! {
    // CI cranks the shape suites with PROPTEST_CASES (chaos job).
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(8)))]
    #[test]
    fn shaped_tenant_streams_are_ordered_wellformed_and_deterministic(
        seed in any::<u64>(),
        shape in 0u8..4,
    ) {
        let events: Vec<_> =
            WorkloadStream::new(shaped_stream_config(shape), seed).take(300).collect();
        let twin: Vec<_> =
            WorkloadStream::new(shaped_stream_config(shape), seed).take(300).collect();
        prop_assert_eq!(&events, &twin, "equal (config, seed) must replay bit-identically");
        // Every shape must keep the stream's safety contract: time-ordered
        // events, dense ascending tenant ids, and per-tenant lifecycles of
        // Arrive … intensity changes … Depart, with in-range draws.
        let mut last = 0;
        let mut live: Vec<bool> = Vec::new();
        for e in &events {
            prop_assert!(e.at >= last, "time-ordered stream");
            last = e.at;
            let id = e.tenant as usize;
            match &e.kind {
                TenantEventKind::Arrive { app } => {
                    prop_assert_eq!(id, live.len(), "tenant ids are dense and ascending");
                    live.push(true);
                    prop_assert!(
                        (2..=12).contains(&app.n_tasks()),
                        "task counts respect the configured (and heavy-tail-clamped) bounds"
                    );
                    prop_assert!(app.total_bytes() > 0, "profiles carry traffic");
                }
                TenantEventKind::SetIntensity { intensity } => {
                    prop_assert_eq!(live.get(id).copied(), Some(true),
                        "intensity changes only hit live tenants");
                    prop_assert!((1..=3).contains(intensity));
                }
                TenantEventKind::Depart => {
                    prop_assert_eq!(live.get(id).copied(), Some(true),
                        "exactly one Depart, after Arrive");
                    live[id] = false;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest::resolve_cases(8)))]
    #[test]
    fn switch_failure_streams_stay_link_consistent_and_deterministic(
        seed in any::<u64>(),
        switch_prob in 0.0f64..=1.0,
    ) {
        let topo = MultiRootedTreeSpec::default().build();
        let groups = switch_link_groups(&topo, 2);
        prop_assert!(!groups.is_empty(), "the default tree has agg/core switches");
        let cfg = NetworkEventStreamConfig {
            n_links: topo.link_count() as u32,
            mean_time_between_incidents: 10 * SECS,
            switch_failures: Some(SwitchFailureConfig { groups, switch_prob }),
            ..NetworkEventStreamConfig::default()
        };
        let events: Vec<_> = NetworkEventStream::new(cfg.clone(), seed).take(200).collect();
        let twin: Vec<_> = NetworkEventStream::new(cfg, seed).take(200).collect();
        prop_assert_eq!(&events, &twin, "equal (config, seed) must replay bit-identically");
        // Correlated switch bursts must not break per-link sanity: an
        // incident only opens on a free link, a recovery only closes an
        // open incident, and time never runs backwards.
        let mut last = 0;
        let mut busy = vec![false; topo.link_count()];
        for e in &events {
            prop_assert!(e.at >= last, "time-ordered stream");
            last = e.at;
            let l = e.link as usize;
            prop_assert!(l < busy.len(), "link ids stay in range");
            match e.kind {
                NetworkEventKind::LinkFail
                | NetworkEventKind::LinkDegrade { .. }
                | NetworkEventKind::DrainStart { .. } => {
                    prop_assert!(!busy[l], "incidents only open on free links");
                    busy[l] = true;
                }
                NetworkEventKind::LinkRecover | NetworkEventKind::DrainEnd => {
                    prop_assert!(busy[l], "recoveries only close open incidents");
                    busy[l] = false;
                }
            }
            if let NetworkEventKind::LinkDegrade { fraction }
            | NetworkEventKind::DrainStart { fraction } = e.kind
            {
                prop_assert!(fraction > 0.0 && fraction < 1.0);
            }
        }
    }
}
