//! Property-based tests over the core data structures and invariants.

use choreo_repro::flowsim::max_min_rates;
use choreo_repro::lp::{solve_lp, Lp, LpOutcome, Relation};
use choreo_repro::measure::{NetworkSnapshot, RateModel};
use choreo_repro::place::greedy::GreedyPlacer;
use choreo_repro::place::problem::{validate, Machines, NetworkLoad};
use choreo_repro::profile::{AppProfile, TrafficMatrix};
use choreo_repro::topology::{MultiRootedTreeSpec, RouteTable};
use choreo_repro::wire::ControlMsg;
use proptest::prelude::*;

// ---------------------------------------------------------------- max-min

proptest! {
    #[test]
    fn maxmin_never_exceeds_capacity_and_is_work_conserving(
        caps in prop::collection::vec(1.0f64..1000.0, 1..6),
        flow_paths in prop::collection::vec(prop::collection::vec(0usize..6, 1..4), 1..12),
    ) {
        let nr = caps.len();
        let flows: Vec<Vec<u32>> = flow_paths
            .iter()
            .map(|p| {
                let mut f: Vec<u32> = p.iter().map(|r| (r % nr) as u32).collect();
                f.sort_unstable();
                f.dedup(); // a flow crosses each resource at most once
                f
            })
            .collect();
        let rates = max_min_rates(&caps, &flows);
        // 1. No resource over capacity.
        for r in 0..nr {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&(r as u32)))
                .map(|(_, rate)| *rate)
                .sum();
            prop_assert!(used <= caps[r] + 1e-6, "resource {r}: {used} > {}", caps[r]);
        }
        // 2. Every flow gets a strictly positive rate.
        for (i, rate) in rates.iter().enumerate() {
            prop_assert!(*rate > 0.0, "flow {i} starved");
        }
        // 3. Work conservation: every flow crosses at least one saturated
        //    resource (otherwise its rate could grow -> not max-min).
        for (f, rate) in flows.iter().zip(&rates) {
            let bottlenecked = f.iter().any(|&r| {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.contains(&r))
                    .map(|(_, x)| *x)
                    .sum();
                used >= caps[r as usize] - 1e-6
            });
            prop_assert!(bottlenecked, "flow with rate {rate} has slack everywhere");
        }
    }
}

// ------------------------------------------------------------- placement

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn greedy_placements_are_always_valid(
        n_tasks in 2usize..7,
        n_vms in 2usize..6,
        seed in 0u64..500,
        demands in prop::collection::vec(1u32..=8, 2..7),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = TrafficMatrix::zeros(n_tasks);
        for i in 0..n_tasks {
            for j in 0..n_tasks {
                if i != j && rng.gen_bool(0.5) {
                    m.set(i, j, rng.gen_range(1..1_000_000_000));
                }
            }
        }
        let cpu: Vec<f64> = (0..n_tasks)
            .map(|t| 0.5 * demands[t % demands.len()] as f64)
            .collect();
        let app = AppProfile::new("prop", cpu, m, 0);
        let machines = Machines::uniform(n_vms, 4.0);
        let mut rates = vec![0.0; n_vms * n_vms];
        for v in rates.iter_mut() {
            *v = rng.gen_range(1e8..4e9);
        }
        let model = if seed % 2 == 0 { RateModel::Hose } else { RateModel::Pipe };
        let snap = NetworkSnapshot::from_rates(n_vms, rates, model);
        match GreedyPlacer.place(&app, &machines, &snap, &NetworkLoad::new(n_vms)) {
            Ok(p) => {
                prop_assert!(validate(&app, &machines, &p).is_ok());
                prop_assert_eq!(p.assignment.len(), n_tasks);
            }
            Err(_) => {
                // Only acceptable when demand genuinely cannot fit.
                let total: f64 = app.cpu.iter().sum();
                let biggest = app.cpu.iter().cloned().fold(0.0, f64::max);
                prop_assert!(
                    total > n_vms as f64 * 4.0 || biggest > 4.0 ||
                    // or bin-packing fragmentation, which we accept
                    total > n_vms as f64 * 4.0 * 0.5,
                    "greedy failed on an easy instance: total {total}"
                );
            }
        }
    }
}

// ------------------------------------------------------------ wire format

proptest! {
    #[test]
    fn control_messages_roundtrip(
        train_id in any::<u64>(),
        bursts in 1u32..1000,
        burst_len in 1u32..5000,
        packet_bytes in 32u32..9000,
        gap in 0u64..10_000_000,
        port in 1u16..u16::MAX,
        ip in any::<[u8; 4]>(),
    ) {
        let msgs = vec![
            ControlMsg::PrepareReceive { train_id, bursts },
            ControlMsg::Ready { udp_port: port },
            ControlMsg::SendTrain {
                train_id,
                dest: (ip, port),
                bursts,
                burst_len,
                packet_bytes,
                gap_ns: gap,
            },
            ControlMsg::Sent { packets: train_id },
            ControlMsg::FetchReport { train_id },
        ];
        for m in msgs {
            let framed = m.encode();
            let decoded = ControlMsg::decode(&framed[4..]);
            prop_assert_eq!(decoded, Ok(m));
        }
    }

    #[test]
    fn probe_header_roundtrips(
        train_id in any::<u64>(),
        burst in any::<u32>(),
        idx in any::<u32>(),
        burst_len in any::<u32>(),
        sent_ns in any::<u64>(),
    ) {
        use choreo_repro::wire::ProbeHeader;
        let h = ProbeHeader { train_id, burst, idx, burst_len, sent_ns };
        let mut buf = bytes_mut();
        h.encode(&mut buf);
        prop_assert_eq!(ProbeHeader::decode(&buf), Some(h));
    }
}

fn bytes_mut() -> bytes::BytesMut {
    bytes::BytesMut::new()
}

// -------------------------------------------------------------- topology

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn tree_hop_counts_are_one_or_even(
        cores in 1usize..3,
        pods in 1usize..3,
        aggs in 1usize..3,
        tors in 1usize..3,
        hosts in 1usize..4,
        deep in any::<bool>(),
    ) {
        let spec = MultiRootedTreeSpec {
            cores,
            pods,
            aggs_per_pod: aggs,
            tors_per_pod: tors,
            hosts_per_tor: hosts,
            second_agg_tier: deep,
            ..Default::default()
        };
        let topo = spec.build();
        let routes = RouteTable::new(&topo);
        for &a in topo.hosts() {
            for &b in topo.hosts() {
                if a != b {
                    let h = routes.hop_count(a, b);
                    prop_assert!(h % 2 == 0 && h >= 2 && h <= 8, "hops {h}");
                }
            }
        }
    }
}

// ------------------------------------------------------------------- lp

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn lp_optimum_is_feasible_and_no_worse_than_origin(
        n in 1usize..5,
        objs in prop::collection::vec(-5.0f64..5.0, 1..5),
        rhs in prop::collection::vec(0.5f64..20.0, 1..4),
    ) {
        // Box-constrained LPs with <=-constraints through the origin:
        // always feasible (x = 0), never unbounded (finite boxes).
        let mut lp = Lp::new(n);
        for v in 0..n {
            lp.set_objective(v, objs[v % objs.len()]);
            lp.set_bounds(v, 0.0, 3.0);
        }
        for (k, r) in rhs.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> =
                (0..n).map(|v| (v, ((v + k) % 3) as f64)).collect();
            lp.add_constraint(coeffs, Relation::Le, *r);
        }
        match solve_lp(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(&s.x, 1e-6));
                prop_assert!(s.objective <= 1e-9, "origin is feasible with objective 0");
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }
}

// --------------------------------------------------------------- matrix

proptest! {
    #[test]
    fn traffic_matrix_transfer_order_is_total_and_descending(
        entries in prop::collection::vec((0usize..6, 0usize..6, 1u64..1_000_000), 0..20),
    ) {
        let mut m = TrafficMatrix::zeros(6);
        for (i, j, b) in entries {
            m.add(i, j, b);
        }
        let t = m.transfers_desc();
        for w in t.windows(2) {
            prop_assert!(w[0].2 >= w[1].2, "descending bytes");
        }
        let total: u64 = t.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(total, m.total_bytes());
        for &(i, j, b) in &t {
            prop_assert!(i != j && b > 0);
            prop_assert_eq!(m.bytes(i, j), b);
        }
    }
}
