//! Integration tests pitting the placers against each other.

use choreo_repro::lp::IlpConfig;
use choreo_repro::measure::{NetworkSnapshot, RateModel};
use choreo_repro::place::baseline::{MinMachinesPlacer, RandomPlacer, RoundRobinPlacer};
use choreo_repro::place::greedy::GreedyPlacer;
use choreo_repro::place::ilp::{Formulation, IlpPlacer};
use choreo_repro::place::predict::predict_completion_secs;
use choreo_repro::place::problem::{validate, Machines, NetworkLoad};
use choreo_repro::profile::{AppProfile, TrafficMatrix, WorkloadGen, WorkloadGenConfig};
use rand::{Rng, SeedableRng};

fn random_snapshot(n: usize, seed: u64, model: RateModel) -> NetworkSnapshot {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rates = vec![0.0; n * n];
    for v in rates.iter_mut() {
        *v = if rng.gen_bool(0.2) { rng.gen_range(2e8..8e8) } else { rng.gen_range(9e8..11e8) };
    }
    NetworkSnapshot::from_rates(n, rates, model)
}

#[test]
fn ilp_never_loses_to_greedy() {
    // The exact solver's objective must be <= greedy's on every instance
    // it proves optimal.
    let mut gen = WorkloadGen::new(
        WorkloadGenConfig { tasks_min: 3, tasks_max: 4, ..Default::default() },
        55,
    );
    let machines = Machines::uniform(3, 4.0);
    let load = NetworkLoad::new(3);
    let ilp = IlpPlacer {
        config: IlpConfig {
            max_nodes: 2000,
            time_limit: Some(std::time::Duration::from_secs(2)),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut compared = 0;
    for k in 0..10u64 {
        let app = gen.next_app();
        if app.cpu.iter().sum::<f64>() > 12.0 {
            continue;
        }
        let snap = random_snapshot(3, 100 + k, RateModel::Hose);
        let Ok(g) = GreedyPlacer.place(&app, &machines, &snap, &load) else { continue };
        let Ok(opt) = ilp.place(&app, &machines, &snap, &load) else { continue };
        if !opt.proven_optimal {
            continue;
        }
        let g_secs = predict_completion_secs(&app, &g, &snap);
        assert!(
            opt.objective_secs <= g_secs + 1e-6,
            "app {k}: ILP {} worse than greedy {g_secs}",
            opt.objective_secs
        );
        assert!(validate(&app, &machines, &opt.placement).is_ok());
        compared += 1;
    }
    assert!(compared >= 5, "enough instances compared: {compared}");
}

#[test]
fn formulations_agree_on_small_instances() {
    let machines = Machines::uniform(3, 1.0);
    let load = NetworkLoad::new(3);
    for seed in 0..5u64 {
        let mut m = TrafficMatrix::zeros(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        m.set(0, 1, rng.gen_range(1..100) * 1_000_000);
        m.set(1, 2, rng.gen_range(1..100) * 1_000_000);
        m.set(0, 2, rng.gen_range(1..100) * 1_000_000);
        let app = AppProfile::new("x", vec![1.0; 3], m, 0);
        let snap = random_snapshot(3, 200 + seed, RateModel::Pipe);
        let sparse = IlpPlacer { formulation: Formulation::Sparse, ..Default::default() }
            .place(&app, &machines, &snap, &load)
            .expect("sparse");
        let paper = IlpPlacer { formulation: Formulation::Paper, ..Default::default() }
            .place(&app, &machines, &snap, &load)
            .expect("paper");
        assert!(sparse.proven_optimal && paper.proven_optimal, "seed {seed}");
        assert!(
            (sparse.objective_secs - paper.objective_secs).abs() < 1e-6,
            "seed {seed}: {} vs {}",
            sparse.objective_secs,
            paper.objective_secs
        );
    }
}

#[test]
fn greedy_beats_baselines_in_prediction_on_skewed_traffic() {
    // Deterministic, prediction-level version of §6.2: on skewed traffic
    // matrices over heterogeneous networks, greedy's predicted completion
    // beats every baseline's on average.
    let n_vms = 6;
    let machines = Machines::uniform(n_vms, 4.0);
    let load = NetworkLoad::new(n_vms);
    let mut gen = WorkloadGen::new(
        WorkloadGenConfig { tasks_min: 5, tasks_max: 8, ..Default::default() },
        91,
    );
    let mut greedy_sum = 0.0;
    let mut base_sums = [0.0f64; 3];
    let mut n = 0;
    for k in 0..15u64 {
        let app = gen.next_app_with(choreo_repro::profile::AppPattern::Skewed);
        if app.cpu.iter().sum::<f64>() > n_vms as f64 * 4.0 {
            continue;
        }
        let snap = random_snapshot(n_vms, 300 + k, RateModel::Hose);
        let Ok(g) = GreedyPlacer.place(&app, &machines, &snap, &load) else { continue };
        let mut rnd = RandomPlacer::new(k);
        let mut rr = RoundRobinPlacer::new();
        let baselines = [
            rnd.place(&app, &machines, &load),
            rr.place(&app, &machines, &load),
            MinMachinesPlacer.place(&app, &machines, &load),
        ];
        if baselines.iter().any(|b| b.is_err()) {
            continue;
        }
        greedy_sum += predict_completion_secs(&app, &g, &snap);
        for (i, b) in baselines.iter().enumerate() {
            base_sums[i] += predict_completion_secs(&app, b.as_ref().unwrap(), &snap);
        }
        n += 1;
    }
    assert!(n >= 10);
    for (i, name) in ["random", "round-robin", "min-machines"].iter().enumerate() {
        assert!(
            greedy_sum < base_sums[i],
            "greedy total {greedy_sum:.1}s should beat {name} {:.1}s",
            base_sums[i]
        );
    }
}

#[test]
fn predictor_agrees_with_ilp_objective() {
    // The closed-form predictor and the ILP objective are the same model;
    // on proven-optimal placements they must agree numerically.
    let machines = Machines::uniform(3, 1.0);
    let load = NetworkLoad::new(3);
    for seed in 0..5u64 {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 50_000_000 + seed * 10_000_000);
        m.set(2, 0, 30_000_000);
        let app = AppProfile::new("agree", vec![1.0; 3], m, 0);
        for model in [RateModel::Pipe, RateModel::Hose] {
            let snap = random_snapshot(3, 400 + seed, model);
            let out = IlpPlacer::default().place(&app, &machines, &snap, &load).expect("solved");
            let predicted = predict_completion_secs(&app, &out.placement, &snap);
            assert!(
                (predicted - out.objective_secs).abs() < 1e-6,
                "seed {seed} {model:?}: predictor {predicted} vs ILP {}",
                out.objective_secs
            );
        }
    }
}
